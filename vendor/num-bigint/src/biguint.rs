//! Arbitrary-precision unsigned integers on little-endian `u32` limbs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Shl, Sub};
use std::str::FromStr;

use num_traits::{One, ToPrimitive, Zero};

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing zero limbs; zero is the empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

const LIMB_BITS: u64 = 32;

impl BigUint {
    fn from_limbs(mut limbs: Vec<u32>) -> BigUint {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() as u64 * LIMB_BITS - u64::from(top.leading_zeros()),
        }
    }

    fn add_mag(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in longer.iter().enumerate() {
            let sum = u64::from(limb) + u64::from(shorter.get(i).copied().unwrap_or(0)) + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs(out)
    }

    /// Magnitude subtraction.
    ///
    /// # Panics
    /// Panics if `other > self`.
    fn sub_mag(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let diff = i64::from(self.limbs[i])
                - i64::from(other.limbs.get(i).copied().unwrap_or(0))
                - borrow;
            if diff < 0 {
                out.push((diff + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(diff as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    fn mul_mag(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u64::from(a) * u64::from(b) + u64::from(out[i + j]) + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = u64::from(out[k]) + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    fn shl_bits(&self, shift: u64) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = (shift / LIMB_BITS) as usize;
        let bit_shift = (shift % LIMB_BITS) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    fn shr_bits(&self, shift: u64) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = (shift / LIMB_BITS) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (shift % LIMB_BITS) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).copied().unwrap_or(0) << (32 - bit_shift);
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }

    fn trailing_zeros(&self) -> u64 {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i as u64 * LIMB_BITS + u64::from(l.trailing_zeros());
            }
        }
        0
    }

    /// Greatest common divisor by the binary (Stein) algorithm.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let ta = self.trailing_zeros();
        let tb = other.trailing_zeros();
        let common = ta.min(tb);
        let mut a = self.shr_bits(ta);
        let mut b = other.shr_bits(tb);
        loop {
            // Invariant: a and b are odd.
            if a < b {
                std::mem::swap(&mut a, &mut b);
            }
            a = a.sub_mag(&b);
            if a.is_zero() {
                return b.shl_bits(common);
            }
            a = a.shr_bits(a.trailing_zeros());
        }
    }

    /// Long division (Knuth TAOCP vol. 2, Algorithm D): returns
    /// `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        // Single-limb fast path.
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u32(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = u64::from(divisor.limbs.last().unwrap().leading_zeros());
        let v = divisor.shl_bits(shift).limbs;
        let mut u = self.shl_bits(shift).limbs;
        let n = v.len();
        let m = u.len() - n;
        u.push(0);

        let b = 1u64 << 32;
        let mut q_limbs = vec![0u32; m + 1];
        // D2–D7: compute one quotient limb per iteration, high to low.
        for j in (0..=m).rev() {
            // D3: estimate the quotient limb from the top limbs.
            let top = (u64::from(u[j + n]) << 32) | u64::from(u[j + n - 1]);
            let mut qhat = top / u64::from(v[n - 1]);
            let mut rhat = top % u64::from(v[n - 1]);
            while qhat >= b || qhat * u64::from(v[n - 2]) > ((rhat << 32) | u64::from(u[j + n - 2]))
            {
                qhat -= 1;
                rhat += u64::from(v[n - 1]);
                if rhat >= b {
                    break;
                }
            }

            // D4: multiply-and-subtract qhat·v from u[j .. j+n].
            let mut mul_carry = 0u64;
            let mut borrow = 0i64;
            for i in 0..n {
                let p = qhat * u64::from(v[i]) + mul_carry;
                mul_carry = p >> 32;
                let d = i64::from(u[j + i]) - (p as u32 as i64) - borrow;
                if d < 0 {
                    u[j + i] = (d + b as i64) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = d as u32;
                    borrow = 0;
                }
            }
            let d = i64::from(u[j + n]) - mul_carry as i64 - borrow;
            if d < 0 {
                // D6: the estimate was one too large — add the divisor back.
                u[j + n] = (d + b as i64) as u32;
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let t = u64::from(u[j + i]) + u64::from(v[i]) + carry;
                    u[j + i] = t as u32;
                    carry = t >> 32;
                }
                u[j + n] = (u64::from(u[j + n]) + carry) as u32;
            } else {
                u[j + n] = d as u32;
            }
            q_limbs[j] = qhat as u32;
        }

        u.truncate(n);
        let remainder = BigUint::from_limbs(u).shr_bits(shift);
        (BigUint::from_limbs(q_limbs), remainder)
    }

    fn div_rem_u32(&self, divisor: u32) -> (BigUint, u32) {
        assert!(divisor != 0, "division by zero");
        let d = u64::from(divisor);
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | u64::from(self.limbs[i]);
            out[i] = (cur / d) as u32;
            rem = cur % d;
        }
        (BigUint::from_limbs(out), rem as u32)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> BigUint {
                let mut v = v as u128;
                let mut limbs = Vec::new();
                while v > 0 {
                    limbs.push(v as u32);
                    v >>= 32;
                }
                BigUint { limbs }
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, u128, usize);

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            unequal => unequal,
        }
    }
}

macro_rules! forward_uint_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$inner(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$inner(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$inner(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$inner(&rhs)
            }
        }
    };
}

forward_uint_binop!(Add, add, add_mag);
forward_uint_binop!(Sub, sub, sub_mag);
forward_uint_binop!(Mul, mul, mul_mag);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_mag(rhs);
    }
}

impl AddAssign<BigUint> for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        *self = self.add_mag(&rhs);
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        self.shl_bits(shift as u64)
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        self.shl_bits(shift as u64)
    }
}

impl Zero for BigUint {
    fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }
    fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }
}

impl One for BigUint {
    fn one() -> Self {
        BigUint::from(1u32)
    }
}

impl ToPrimitive for BigUint {
    fn to_i64(&self) -> Option<i64> {
        self.to_u64().and_then(|v| i64::try_from(v).ok())
    }
    fn to_u64(&self) -> Option<u64> {
        if self.limbs.len() > 2 {
            return None;
        }
        let lo = u64::from(self.limbs.first().copied().unwrap_or(0));
        let hi = u64::from(self.limbs.get(1).copied().unwrap_or(0));
        Some((hi << 32) | lo)
    }
    fn to_f64(&self) -> Option<f64> {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 4294967296.0 + f64::from(l);
        }
        Some(acc)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel off 9 decimal digits at a time.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u32(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        write!(f, "{}", chunks.last().unwrap())?;
        for chunk in chunks.iter().rev().skip(1) {
            write!(f, "{chunk:09}")?;
        }
        Ok(())
    }
}

/// Error parsing a decimal unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError;

impl FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigUintError);
        }
        let mut acc = BigUint::zero();
        let ten_pow_9 = BigUint::from(1_000_000_000u32);
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 9).min(bytes.len());
            let chunk: u32 = s[i..end].parse().map_err(|_| ParseBigUintError)?;
            let scale = 10u64.pow((end - i) as u32);
            acc = if scale == 1_000_000_000 {
                acc.mul_mag(&ten_pow_9)
            } else {
                acc.mul_mag(&BigUint::from(scale))
            };
            acc += BigUint::from(chunk);
            i = end;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn add_sub_mul_round_trip() {
        let a = u(u64::MAX as u128) * u(u64::MAX as u128);
        let b = u(1234567890123456789);
        let sum = &a + &b;
        assert_eq!(&sum - &b, a);
        assert_eq!((&a * &b).div_rem(&b), (a.clone(), BigUint::zero()));
    }

    #[test]
    fn division_with_remainder() {
        let a = u(10u128.pow(30) + 7);
        let d = u(10u128.pow(15));
        let (q, r) = a.div_rem(&d);
        assert_eq!(q, u(10u128.pow(15)));
        assert_eq!(r, u(7));
    }

    #[test]
    fn shifts_match_powers_of_two() {
        assert_eq!(u(1) << 100, u(1 << 50) * u(1 << 50));
        assert_eq!((u(1) << 100).bits(), 101);
        assert_eq!(u(0) << 5, u(0));
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in [
            "0",
            "7",
            "1000000000",
            "340282366920938463463374607431768211455",
        ] {
            let v: BigUint = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        let big = u(u128::MAX);
        assert_eq!(big.to_string().parse::<BigUint>().unwrap(), big);
        assert!("12x".parse::<BigUint>().is_err());
        assert!("".parse::<BigUint>().is_err());
    }

    #[test]
    fn comparison_orders_by_value() {
        assert!(u(5) < u(6));
        assert!(u(1) << 64 > u(u64::MAX as u128));
        assert_eq!(u(42).cmp(&u(42)), Ordering::Equal);
    }

    #[test]
    fn to_u64_bounds() {
        assert_eq!(u(u64::MAX as u128).to_u64(), Some(u64::MAX));
        assert_eq!((u(1) << 64).to_u64(), None);
        assert_eq!(u(0).to_u64(), Some(0));
    }
}
