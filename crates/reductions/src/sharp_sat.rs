//! Figure 2 / Theorem 4.1(1) — the reduction from #SAT to FOMC of an FO²
//! sentence, proving the *combined* complexity of FO² model counting is
//! #P-hard.
//!
//! Given a Boolean formula `F` over variables `X₁,…,X_n` (with `n ≥ 2`), the
//! sentence `ϕ_F` over the fixed vocabulary `{A/1, B/1, C/1, R/2, S/2}` forces
//! every model over a domain of size `n+1` to look like Figure 2: a unique
//! `C`-element `c₀`, a unique `R`-path `c₁ → … → c_n` from the unique
//! `A`-element to the unique `B`-element, no other `R`-edges, and `S`-edges
//! only from `c₀`. The only freedom left is which `S(c₀, cᵢ)` edges exist —
//! exactly one Boolean assignment — constrained by `F` itself with `Xᵢ`
//! replaced by `γᵢ = ∃x (αᵢ(x) ∧ ∃y S(y,x))`, where `αᵢ(x)` says "x is the
//! i-th element of the path". Hence `FOMC(ϕ_F, n+1) = (n+1)! · #F`.

use wfomc_logic::builders::{and, atom, exists, forall, implies, not};
use wfomc_logic::syntax::Formula;
use wfomc_logic::vocabulary::Vocabulary;
use wfomc_prop::PropFormula;

/// The Figure 2 reduction for one Boolean formula.
#[derive(Clone, Debug)]
pub struct SharpSatReduction {
    /// The FO² sentence ϕ_F.
    pub sentence: Formula,
    /// Number of Boolean variables of `F`.
    pub num_variables: usize,
    /// The domain size at which the count equals `(n+1)!·#F`.
    pub domain_size: usize,
}

/// Builds `ϕ_F` from a propositional formula over variables `0..num_vars`.
///
/// # Panics
/// Panics if `num_vars < 2` (the gadget needs the `A` and `B` elements to be
/// distinct) or the formula mentions a variable `≥ num_vars`.
pub fn sharp_sat_to_fomc(boolean_formula: &PropFormula, num_vars: usize) -> SharpSatReduction {
    assert!(
        num_vars >= 2,
        "the Figure 2 gadget needs at least two Boolean variables (pad F if necessary)"
    );
    assert!(
        boolean_formula.num_vars() <= num_vars,
        "the formula mentions more variables than declared"
    );

    let mut parts: Vec<Formula> = Vec::new();

    // Unique, pairwise-distinct A, B and C elements.
    for p in ["A", "B", "C"] {
        parts.push(exists(["x"], atom(p, &["x"])));
        parts.push(forall(
            ["x", "y"],
            implies(
                and(vec![atom(p, &["x"]), atom(p, &["y"])]),
                Formula::equals(
                    wfomc_logic::term::Term::var("x"),
                    wfomc_logic::term::Term::var("y"),
                ),
            ),
        ));
    }
    for (p, q) in [("A", "B"), ("A", "C"), ("B", "C")] {
        parts.push(not(exists(
            ["x"],
            and(vec![atom(p, &["x"]), atom(q, &["x"])]),
        )));
    }

    // There is an R-path with exactly `num_vars` elements from A to B …
    parts.push(exists_path(num_vars));
    // … and no path with m ∈ [2n] \ {n} elements.
    for m in 1..=(2 * num_vars) {
        if m != num_vars {
            parts.push(not(exists_path(m)));
        }
    }

    // R avoids the C element; S starts at the C element. We additionally
    // require S to point away from the C element (excluding the self-loop
    // S(c₀, c₀), which the paper's prose leaves implicit but which is needed
    // for the count to be exactly (n+1)!·#F rather than 2·(n+1)!·#F).
    parts.push(forall(
        ["x", "y"],
        implies(
            atom("R", &["x", "y"]),
            and(vec![not(atom("C", &["x"])), not(atom("C", &["y"]))]),
        ),
    ));
    parts.push(forall(
        ["x", "y"],
        implies(
            atom("S", &["x", "y"]),
            and(vec![atom("C", &["x"]), not(atom("C", &["y"]))]),
        ),
    ));

    // F itself, with Xᵢ ↦ γᵢ.
    parts.push(encode_boolean(boolean_formula));

    SharpSatReduction {
        sentence: Formula::and_all(parts),
        num_variables: num_vars,
        domain_size: num_vars + 1,
    }
}

/// The fixed vocabulary of the reduction.
pub fn reduction_vocabulary() -> Vocabulary {
    Vocabulary::from_pairs([("A", 1), ("B", 1), ("C", 1), ("R", 2), ("S", 2)])
}

/// `αᵢ(x)` — "x is the i-th element of the A-rooted R-path" (1-based), written
/// with two alternating variables. The formula has `x` free when `i` is odd
/// and is built so the caller can wrap it appropriately; to keep variable
/// bookkeeping simple we always produce a formula with free variable `x`.
fn alpha(i: usize) -> Formula {
    // α₁(x) = A(x); α_{i+1}(x) = ∃y (α_i(y) ∧ R(y, x)), reusing x/y alternately.
    // To stay within two variables we rebuild the chain from the inside out,
    // swapping the roles of x and y at every level and finally renaming so the
    // free variable is x.
    build_alpha(i, "x", "y")
}

fn build_alpha(i: usize, free: &str, other: &str) -> Formula {
    if i == 1 {
        return atom("A", &[free]);
    }
    let inner = build_alpha(i - 1, other, free);
    exists([other], and(vec![inner, atom("R", &[other, free])]))
}

/// "There exists an R-path with exactly `m` elements from the A element to the
/// B element."
fn exists_path(m: usize) -> Formula {
    exists(["x"], and(vec![alpha(m), atom("B", &["x"])]))
}

/// `γᵢ = ∃x (αᵢ(x) ∧ ∃y S(y, x))`.
fn gamma(i: usize) -> Formula {
    exists(
        ["x"],
        and(vec![alpha(i), exists(["y"], atom("S", &["y", "x"]))]),
    )
}

/// Translates the Boolean formula, mapping variable `i` (0-based) to `γ_{i+1}`.
fn encode_boolean(f: &PropFormula) -> Formula {
    match f {
        PropFormula::Top => Formula::Top,
        PropFormula::Bottom => Formula::Bottom,
        PropFormula::Var(v) => gamma(v + 1),
        PropFormula::Not(g) => Formula::not(encode_boolean(g)),
        PropFormula::And(gs) => Formula::and_all(gs.iter().map(encode_boolean)),
        PropFormula::Or(gs) => Formula::or_all(gs.iter().map(encode_boolean)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use num_traits::ToPrimitive;
    use wfomc_ground::{fomc, GroundSolver};
    use wfomc_logic::weights::{weight_int, Weights};
    use wfomc_prop::counter::{wmc_formula, WmcBackend};
    use wfomc_prop::VarWeights;

    fn count_sat(f: &PropFormula, num_vars: usize) -> i64 {
        wmc_formula(f, &VarWeights::ones(num_vars))
            .to_integer()
            .to_i64()
            .unwrap()
    }

    #[test]
    fn sentence_is_fo2_over_the_fixed_vocabulary() {
        let f = PropFormula::or(PropFormula::var(0), PropFormula::var(1));
        let red = sharp_sat_to_fomc(&f, 2);
        assert!(red.sentence.is_sentence());
        assert_eq!(red.sentence.distinct_variable_count(), 2);
        assert!(red
            .sentence
            .vocabulary()
            .is_subvocabulary_of(&reduction_vocabulary()));
        assert_eq!(red.domain_size, 3);
    }

    #[test]
    fn sentence_size_grows_with_the_formula() {
        let small = sharp_sat_to_fomc(&PropFormula::var(0), 2);
        let large = sharp_sat_to_fomc(&PropFormula::var(0), 5);
        // The "no path of length m" family grows quadratically with n.
        assert!(large.sentence.size() > 2 * small.sentence.size());
    }

    #[test]
    #[should_panic(expected = "at least two Boolean variables")]
    fn tiny_formulas_are_rejected() {
        sharp_sat_to_fomc(&PropFormula::var(0), 1);
    }

    /// The headline equation FOMC(ϕ_F, n+1) = (n+1)!·#F, checked by grounding
    /// for two-variable formulas (domain size 3, 27 ground atoms).
    #[test]
    fn fomc_counts_models_times_factorial_two_variables() {
        let x0 = PropFormula::var(0);
        let x1 = PropFormula::var(1);
        let cases = vec![
            (PropFormula::or(x0.clone(), x1.clone()), 3),
            (PropFormula::and(x0.clone(), x1.clone()), 1),
            (PropFormula::iff(x0.clone(), x1.clone()), 2),
            (PropFormula::Top, 4),
            (PropFormula::not(x0.clone()), 2),
        ];
        for (f, expected_models) in cases {
            assert_eq!(count_sat(&f, 2), expected_models);
            let red = sharp_sat_to_fomc(&f, 2);
            let counted = fomc(&red.sentence, red.domain_size);
            // (n+1)! = 3! = 6.
            assert_eq!(
                counted,
                weight_int(6 * expected_models),
                "formula {f} with {expected_models} models"
            );
        }
    }

    #[test]
    #[ignore = "domain size 4 grounding (48 ground atoms); run with --ignored"]
    fn fomc_counts_models_times_factorial_three_variables() {
        let f = PropFormula::or_all([
            PropFormula::and(PropFormula::var(0), PropFormula::var(1)),
            PropFormula::not(PropFormula::var(2)),
        ]);
        let expected_models = count_sat(&f, 3);
        let red = sharp_sat_to_fomc(&f, 3);
        let counted = GroundSolver::with_backend(WmcBackend::Dpll).wfomc(
            &red.sentence,
            &red.sentence.vocabulary(),
            red.domain_size,
            &Weights::ones(),
        );
        // (n+1)! = 4! = 24.
        assert_eq!(counted, weight_int(24 * expected_models));
    }
}
