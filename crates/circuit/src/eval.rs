//! Linear-time weighted evaluation of smoothed d-DNNF circuits.
//!
//! Evaluation is a single bottom-up pass in arena order (children always
//! precede parents): literal ↦ its weight, And ↦ product of children,
//! decision ↦ `w(v)·hi + w̄(v)·lo`. On a smoothed circuit this computes the
//! weighted model count over the circuit's full universe — the
//! compile-once / evaluate-many payoff: the pass costs `O(|circuit|)`
//! arithmetic operations per weight vector, with no search.
//!
//! The pass only adds and multiplies, so [`evaluate_in`] runs it in any
//! [`Algebra`]; [`evaluate`] is the exact-rational instance behind the
//! original [`LitWeights`]-based API.

use num_traits::One;
use wfomc_logic::algebra::{Algebra, Exact, VarPairs};
use wfomc_logic::weights::Weight;

use crate::ir::{Circuit, Node, NodeId};

/// A lookup of per-variable weight pairs `(w, w̄)`.
///
/// `wfomc-prop` implements this for its `VarWeights`; [`SliceWeights`] is a
/// self-contained implementation for tests, benches and standalone use.
pub trait LitWeights {
    /// The weight of variable `var` being assigned `value`.
    fn weight(&self, var: usize, value: bool) -> Weight;

    /// `w(var) + w̄(var)`, the contribution of an unconstrained variable.
    fn total(&self, var: usize) -> Weight {
        self.weight(var, true) + self.weight(var, false)
    }
}

/// Dense weight vectors backed by two `Vec<Weight>`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceWeights {
    pos: Vec<Weight>,
    neg: Vec<Weight>,
}

impl SliceWeights {
    /// All-ones weights (plain model counting) for `n` variables.
    pub fn ones(n: usize) -> SliceWeights {
        SliceWeights {
            pos: vec![Weight::one(); n],
            neg: vec![Weight::one(); n],
        }
    }

    /// Weights from parallel `(pos, neg)` vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn from_vecs(pos: Vec<Weight>, neg: Vec<Weight>) -> SliceWeights {
        assert_eq!(pos.len(), neg.len(), "weight vectors must align");
        SliceWeights { pos, neg }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

impl LitWeights for SliceWeights {
    fn weight(&self, var: usize, value: bool) -> Weight {
        if value {
            self.pos[var].clone()
        } else {
            self.neg[var].clone()
        }
    }
}

/// Evaluates the smoothed circuit under `root` against a weight vector.
///
/// The result is the weighted model count over the universe the circuit was
/// smoothed for. Runs in one pass over the whole arena — [`compile`] prunes
/// the arena to the live circuit, so for compiled CNFs every node evaluated
/// is reachable. (On a hand-built arena with garbage nodes the pass wastes
/// a little work on them; use [`Circuit::pruned`] first if that matters.)
///
/// [`compile`]: crate::compile::compile
pub fn evaluate<W: LitWeights + ?Sized>(circuit: &Circuit, root: NodeId, weights: &W) -> Weight {
    evaluate_in(circuit, root, &Exact, &ExactPairs(weights))
}

/// Adapts the original [`LitWeights`] lookup to the algebra-generic
/// [`VarPairs`] interface (in the [`Exact`] algebra).
struct ExactPairs<'w, W: LitWeights + ?Sized>(&'w W);

impl<W: LitWeights + ?Sized> VarPairs<Exact> for ExactPairs<'_, W> {
    fn var_weight(&self, _algebra: &Exact, var: usize, value: bool) -> Weight {
        self.0.weight(var, value)
    }

    fn var_total(&self, _algebra: &Exact, var: usize) -> Weight {
        self.0.total(var)
    }

    fn table_len(&self) -> usize {
        // `LitWeights` has no length; the evaluator never asks for one.
        0
    }
}

/// [`evaluate`] in an arbitrary [`Algebra`]: the same bottom-up pass with
/// `+`/`·` replaced by the algebra's operations. Zero short-circuiting stays
/// sound in any ring because `0 · x = 0`.
pub fn evaluate_in<A: Algebra, W: VarPairs<A> + ?Sized>(
    circuit: &Circuit,
    root: NodeId,
    algebra: &A,
    weights: &W,
) -> A::Elem {
    let mut values: Vec<A::Elem> = vec![algebra.zero(); circuit.len()];
    for (index, node) in circuit.nodes().iter().enumerate() {
        values[index] = match node {
            Node::False => algebra.zero(),
            Node::True => algebra.one(),
            Node::Lit(lit) => weights.var_weight(algebra, lit.var, lit.positive),
            Node::And(children) => {
                let mut product = algebra.one();
                for child in children.iter() {
                    if algebra.is_zero(&values[child.index()]) {
                        product = algebra.zero();
                        break;
                    }
                    algebra.mul_assign(&mut product, &values[child.index()]);
                }
                product
            }
            Node::Decision { var, hi, lo } => {
                let hi_value = &values[hi.index()];
                let lo_value = &values[lo.index()];
                let mut acc = algebra.zero();
                if !algebra.is_zero(hi_value) {
                    let w = weights.var_weight(algebra, *var, true);
                    algebra.add_assign(&mut acc, &algebra.mul(&w, hi_value));
                }
                if !algebra.is_zero(lo_value) {
                    let w = weights.var_weight(algebra, *var, false);
                    algebra.add_assign(&mut acc, &algebra.mul(&w, lo_value));
                }
                acc
            }
        };
    }
    values[root.index()].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::CLit;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn constants_and_literals() {
        let mut c = Circuit::new();
        let x = c.mk_lit(CLit::pos(0));
        let nx = c.mk_lit(CLit::neg(0));
        let w = SliceWeights::from_vecs(vec![weight_int(2)], vec![weight_ratio(1, 2)]);
        assert_eq!(evaluate(&c, c.ff(), &w), weight_int(0));
        assert_eq!(evaluate(&c, c.tt(), &w), weight_int(1));
        assert_eq!(evaluate(&c, x, &w), weight_int(2));
        assert_eq!(evaluate(&c, nx, &w), weight_ratio(1, 2));
    }

    #[test]
    fn decision_is_weighted_shannon_expansion() {
        let mut c = Circuit::new();
        // (v ∧ x1) ∨ (¬v ∧ ¬x1) — equality of two variables.
        let x1 = c.mk_lit(CLit::pos(1));
        let nx1 = c.mk_lit(CLit::neg(1));
        let d = c.mk_decision(0, x1, nx1);
        let w = SliceWeights::from_vecs(
            vec![weight_int(2), weight_int(3)],
            vec![weight_int(5), weight_int(7)],
        );
        // 2·3 + 5·7 = 41.
        assert_eq!(evaluate(&c, d, &w), weight_int(41));
    }

    #[test]
    fn and_multiplies_disjoint_children() {
        let mut c = Circuit::new();
        let x0 = c.mk_lit(CLit::pos(0));
        let x1 = c.mk_lit(CLit::neg(1));
        let a = c.mk_and([x0, x1]);
        let w = SliceWeights::from_vecs(
            vec![weight_int(3), weight_int(100)],
            vec![weight_int(1), weight_int(-4)],
        );
        assert_eq!(evaluate(&c, a, &w), weight_int(-12));
    }

    #[test]
    fn zero_short_circuit_is_exact_with_negative_weights() {
        let mut c = Circuit::new();
        // free gadget on a variable whose total is zero.
        let g = c.mk_free(0);
        let x1 = c.mk_lit(CLit::pos(1));
        let a = c.mk_and([g, x1]);
        let w = SliceWeights::from_vecs(
            vec![weight_int(1), weight_int(9)],
            vec![weight_int(-1), weight_int(9)],
        );
        assert_eq!(evaluate(&c, a, &w), weight_int(0));
    }

    #[test]
    fn slice_weights_basics() {
        let mut w = SliceWeights::ones(2);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.total(0), weight_int(2));
        w = SliceWeights::from_vecs(vec![weight_int(2)], vec![weight_int(-2)]);
        assert_eq!(w.total(0), weight_int(0));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_weight_vectors_panic() {
        SliceWeights::from_vecs(vec![weight_int(1)], vec![]);
    }
}
