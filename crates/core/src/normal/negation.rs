//! Lemma 3.4 — removing negation from ∀*-sentences.
//!
//! For every negated subformula `¬ψ(x̄)` of a universally quantified sentence,
//! introduce two fresh predicates `A`, `B` of arity `|x̄|`, replace `¬ψ(x̄)` by
//! `A(x̄)`, and conjoin
//! `∆ = ∀x̄ [(ψ(x̄) ∨ A(x̄)) ∧ (A(x̄) ∨ B(x̄)) ∧ (ψ(x̄) ∨ B(x̄))]`
//! with weights `w(A) = w̄(A) = w(B) = 1`, `w̄(B) = −1`. In "good" worlds
//! `A ≡ ¬ψ` pointwise, `B` is forced true and contributes 1; in "bad" worlds
//! (some point with `ψ ∧ A`) `B` is unconstrained there and the two extensions
//! cancel. The weighted model count is unchanged.
//!
//! The implementation works on the matrix of a prenex ∀*-sentence in NNF, so
//! "negated subformulas" are exactly the negative literals.

use std::collections::BTreeMap;

use wfomc_logic::syntax::{Atom, Formula};
use wfomc_logic::term::Term;
use wfomc_logic::transform::{nnf, prenex, Prenex};
use wfomc_logic::vocabulary::Vocabulary;
use wfomc_logic::weights::{weight_int, Weights};

use crate::error::LiftError;

/// The result of removing negation from a ∀*-sentence.
#[derive(Clone, Debug)]
pub struct NegationFree {
    /// The positive sentence (still prenex ∀*).
    pub prenex: Prenex,
    /// Extended vocabulary (two fresh predicates per rewritten literal shape).
    pub vocabulary: Vocabulary,
    /// Extended weights.
    pub weights: Weights,
    /// The introduced `(A, B)` predicate name pairs.
    pub introduced: Vec<(String, String)>,
}

impl NegationFree {
    /// The rewritten sentence as a formula.
    pub fn formula(&self) -> Formula {
        self.prenex.to_formula()
    }
}

/// Applies Lemma 3.4 to a universally quantified sentence.
///
/// Returns an error if the sentence has an existential quantifier (apply
/// [`super::skolemize`] first) or contains equality under negation that the
/// rewriting would have to treat as a relational atom (apply
/// [`super::remove_equality`] first).
pub fn remove_negation(
    formula: &Formula,
    vocabulary: &Vocabulary,
    weights: &Weights,
) -> Result<NegationFree, LiftError> {
    if !formula.is_sentence() {
        return Err(LiftError::NotASentence);
    }
    let p = prenex(formula);
    if !p.is_universal() {
        return Err(LiftError::PatternMismatch {
            expected: "a universally quantified (∀*) sentence".to_string(),
        });
    }
    let matrix = nnf(&p.matrix);

    let mut vocabulary = vocabulary.extended_with(&formula.vocabulary());
    let mut weights = weights.clone();
    let mut introduced = Vec::new();
    // Map from negated atom (by predicate + argument pattern) to its A-atom,
    // so repeated occurrences share the same fresh predicates.
    let mut replacements: BTreeMap<Atom, Atom> = BTreeMap::new();
    let mut delta_conjuncts: Vec<Formula> = Vec::new();

    let rewritten = rewrite(
        &matrix,
        &mut vocabulary,
        &mut weights,
        &mut introduced,
        &mut replacements,
        &mut delta_conjuncts,
    )?;

    let new_matrix = Formula::and_all(std::iter::once(rewritten).chain(delta_conjuncts));
    Ok(NegationFree {
        prenex: Prenex {
            prefix: p.prefix,
            matrix: new_matrix,
        },
        vocabulary,
        weights,
        introduced,
    })
}

fn rewrite(
    f: &Formula,
    vocabulary: &mut Vocabulary,
    weights: &mut Weights,
    introduced: &mut Vec<(String, String)>,
    replacements: &mut BTreeMap<Atom, Atom>,
    delta: &mut Vec<Formula>,
) -> Result<Formula, LiftError> {
    match f {
        Formula::Top | Formula::Bottom | Formula::Atom(_) | Formula::Equals(..) => Ok(f.clone()),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Atom(atom) => {
                if let Some(a_atom) = replacements.get(atom) {
                    return Ok(Formula::Atom(a_atom.clone()));
                }
                let arity = atom.args.len();
                let a_pred = vocabulary.add_fresh("NegA", arity);
                let b_pred = vocabulary.add_fresh("NegB", arity);
                weights.set(a_pred.name(), weight_int(1), weight_int(1));
                weights.set(b_pred.name(), weight_int(1), weight_int(-1));
                introduced.push((a_pred.name().to_string(), b_pred.name().to_string()));

                let args: Vec<Term> = atom.args.clone();
                let a_atom = Atom::new(a_pred, args.clone());
                let b_atom = Atom::new(b_pred, args);
                let psi = Formula::Atom(atom.clone());
                // ∆ body: (ψ ∨ A) ∧ (A ∨ B) ∧ (ψ ∨ B).
                delta.push(Formula::and_all([
                    Formula::or(psi.clone(), Formula::Atom(a_atom.clone())),
                    Formula::or(Formula::Atom(a_atom.clone()), Formula::Atom(b_atom.clone())),
                    Formula::or(psi, Formula::Atom(b_atom)),
                ]));
                replacements.insert(atom.clone(), a_atom.clone());
                Ok(Formula::Atom(a_atom))
            }
            Formula::Equals(..) => Err(LiftError::PatternMismatch {
                expected: "no negated equality (apply equality removal first)".to_string(),
            }),
            _ => Err(LiftError::Internal(
                "matrix not in negation normal form".to_string(),
            )),
        },
        Formula::And(parts) => Ok(Formula::and_all(
            parts
                .iter()
                .map(|g| rewrite(g, vocabulary, weights, introduced, replacements, delta))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Formula::Or(parts) => Ok(Formula::or_all(
            parts
                .iter()
                .map(|g| rewrite(g, vocabulary, weights, introduced, replacements, delta))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Formula::Implies(..) | Formula::Iff(..) => Err(LiftError::Internal(
            "matrix not in negation normal form".to_string(),
        )),
        Formula::Forall(..) | Formula::Exists(..) => Err(LiftError::Internal(
            "quantifier inside a prenex matrix".to_string(),
        )),
    }
}

/// Convenience check used by tests: a formula is *positive* if it contains no
/// negation, implication or bi-implication.
pub fn is_positive(f: &Formula) -> bool {
    let mut positive = true;
    f.visit(&mut |node| {
        if matches!(
            node,
            Formula::Not(_) | Formula::Implies(..) | Formula::Iff(..)
        ) {
            positive = false;
        }
    });
    positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::wfomc as ground_wfomc;
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;

    fn check_preserves_wfomc(f: &Formula, weights: &Weights, max_n: usize) {
        let voc = f.vocabulary();
        let nf = remove_negation(f, &voc, weights).expect("rewriting should apply");
        assert!(is_positive(&nf.formula()), "result must be positive");
        for n in 0..=max_n {
            let original = ground_wfomc(f, &voc, n, weights);
            let transformed = ground_wfomc(&nf.formula(), &nf.vocabulary, n, &nf.weights);
            assert_eq!(original, transformed, "WFOMC changed for {f} at n={n}");
        }
    }

    #[test]
    fn removes_negation_from_clause() {
        // ∀x∀y (R(x) ∨ ¬S(x,y)).
        let f = forall(
            ["x", "y"],
            or(vec![atom("R", &["x"]), not(atom("S", &["x", "y"]))]),
        );
        check_preserves_wfomc(&f, &Weights::from_ints([("R", 2, 1), ("S", 1, 3)]), 2);
        let nf = remove_negation(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert_eq!(nf.introduced.len(), 1);
    }

    #[test]
    fn spouse_constraint_as_universal_sentence() {
        // ∀x∀y (Spouse(x,y) ∧ Female(x) ⇒ Male(y)) is a ∀∀ sentence whose NNF
        // has two negative literals.
        let f = catalog::spouse_constraint();
        check_preserves_wfomc(
            &f,
            &Weights::from_ints([("Spouse", 1, 2), ("Female", 3, 1), ("Male", 1, 1)]),
            2,
        );
        let nf = remove_negation(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert_eq!(nf.introduced.len(), 2);
    }

    #[test]
    fn shared_negative_literals_reuse_predicates() {
        // ¬S(x,y) occurs twice; only one (A, B) pair should be created.
        let f = forall(
            ["x", "y"],
            and(vec![
                or(vec![atom("R", &["x"]), not(atom("S", &["x", "y"]))]),
                or(vec![atom("T", &["y"]), not(atom("S", &["x", "y"]))]),
            ]),
        );
        let nf = remove_negation(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert_eq!(nf.introduced.len(), 1);
        check_preserves_wfomc(&f, &Weights::from_ints([("S", 2, 1)]), 2);
    }

    #[test]
    fn distinct_argument_patterns_get_distinct_predicates() {
        // ¬S(x,y) and ¬S(y,x) are different subformulas.
        let f = forall(
            ["x", "y"],
            or(vec![
                not(atom("S", &["x", "y"])),
                not(atom("S", &["y", "x"])),
            ]),
        );
        let nf = remove_negation(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert_eq!(nf.introduced.len(), 2);
        check_preserves_wfomc(&f, &Weights::from_ints([("S", 1, 2)]), 2);
    }

    #[test]
    fn positive_sentence_is_untouched() {
        let f = catalog::table1_sentence();
        let nf = remove_negation(&f, &f.vocabulary(), &Weights::ones()).unwrap();
        assert!(nf.introduced.is_empty());
        assert!(is_positive(&nf.formula()));
    }

    #[test]
    fn existential_sentence_is_rejected() {
        let f = catalog::exists_unary();
        let err = remove_negation(&f, &f.vocabulary(), &Weights::ones()).unwrap_err();
        assert!(matches!(err, LiftError::PatternMismatch { .. }));
    }

    #[test]
    fn qs4_round_trip() {
        let f = catalog::qs4();
        check_preserves_wfomc(&f, &Weights::from_ints([("S", 2, 3)]), 2);
    }
}
