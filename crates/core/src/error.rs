//! Error types for the lifted algorithms and the governed solve surface.

use std::fmt;
use std::time::Duration;

use wfomc_guard::{ExhaustKind, Interrupt};

/// Why a lifted algorithm declined (or failed) to handle an input.
///
/// "Declined" is the common case: the paper's hardness results mean no lifted
/// algorithm can cover all sentences, so the [`crate::solver::Solver`] treats
/// most of these as a signal to fall back to the grounded pipeline rather than
/// as a hard failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LiftError {
    /// The sentence uses more distinct variables than the algorithm supports
    /// (e.g. an FO³ sentence handed to the FO² algorithm).
    TooManyVariables {
        /// Number of distinct variables found.
        found: usize,
        /// Maximum supported.
        max: usize,
    },
    /// A predicate has higher arity than the algorithm supports.
    ArityTooLarge {
        /// The offending predicate name.
        predicate: String,
        /// Its arity.
        arity: usize,
        /// Maximum supported arity.
        max: usize,
    },
    /// The input is not a sentence (it has free variables).
    NotASentence,
    /// The formula could not be interpreted as a conjunctive query.
    NotAConjunctiveQuery,
    /// The conjunctive query has a self-join, which Theorem 3.6 excludes.
    HasSelfJoin,
    /// The query hypergraph is not γ-acyclic, so Fagin's reduction got stuck.
    NotGammaAcyclic,
    /// A weight pair has `w + w̄ = 0`, so it admits no probability
    /// normalization (required by the probability-space CQ algorithm).
    NoProbabilityNormalization {
        /// The offending predicate.
        predicate: String,
    },
    /// The sentence does not match the special-case algorithm it was handed to
    /// (e.g. a non-QS4 sentence given to the QS4 dynamic program).
    PatternMismatch {
        /// Description of the expected pattern.
        expected: String,
    },
    /// The normalization produced something the cell algorithm cannot consume;
    /// this indicates a bug and carries a description.
    Internal(String),
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::TooManyVariables { found, max } => write!(
                f,
                "sentence uses {found} distinct variables but the algorithm supports at most {max}"
            ),
            LiftError::ArityTooLarge {
                predicate,
                arity,
                max,
            } => write!(
                f,
                "predicate {predicate} has arity {arity}, above the supported maximum {max}"
            ),
            LiftError::NotASentence => write!(f, "the formula has free variables"),
            LiftError::NotAConjunctiveQuery => {
                write!(f, "the formula is not a conjunctive query")
            }
            LiftError::HasSelfJoin => {
                write!(f, "the conjunctive query has a self-join")
            }
            LiftError::NotGammaAcyclic => {
                write!(f, "the query hypergraph is not γ-acyclic")
            }
            LiftError::NoProbabilityNormalization { predicate } => write!(
                f,
                "predicate {predicate} has w + w̄ = 0, so tuple probabilities are undefined"
            ),
            LiftError::PatternMismatch { expected } => {
                write!(
                    f,
                    "the sentence does not match the expected pattern: {expected}"
                )
            }
            LiftError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for LiftError {}

/// Why a governed solve ([`crate::plan::Plan::count_with_limits`] and
/// friends) failed: either an ordinary [`LiftError`], or a structured
/// resource-exhaustion report.
///
/// Exhaustion is not corruption — the plan and all of its caches remain
/// consistent, so retrying the same point with larger (or no) limits
/// succeeds and agrees with an unbudgeted solve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SolveError {
    /// The underlying algorithm declined or failed (see [`LiftError`]).
    Lift(LiftError),
    /// The wall-clock deadline expired inside `phase`.
    DeadlineExceeded {
        /// The pipeline loop that observed the expiry.
        phase: &'static str,
        /// Time since the solve started when the expiry was observed.
        elapsed: Duration,
    },
    /// The work cap was exhausted inside `phase`.
    WorkCapExceeded {
        /// The pipeline loop that observed the exhaustion.
        phase: &'static str,
        /// Work units recorded when the cap tripped.
        work: u64,
        /// The armed cap.
        cap: u64,
    },
    /// An up-front memory estimate exceeded the cap in `phase`.
    MemEstimateExceeded {
        /// The phase whose allocation estimate tripped the cap.
        phase: &'static str,
        /// The a-priori estimate.
        estimate: u64,
        /// The armed cap.
        cap: u64,
    },
    /// The [`wfomc_guard::CancelToken`] was raised; observed inside `phase`.
    Cancelled {
        /// The pipeline loop that observed the cancellation.
        phase: &'static str,
    },
    /// A batch worker panicked while evaluating one point. The panic was
    /// contained with `catch_unwind`; other points are unaffected.
    WorkerPanicked {
        /// Best-effort panic payload (the `&str`/`String` message if any).
        message: String,
    },
}

impl SolveError {
    /// True when the error reports resource exhaustion or cancellation (as
    /// opposed to an algorithmic [`LiftError`] or a contained panic) — the
    /// cases where retrying with a larger budget can succeed.
    pub fn is_exhaustion(&self) -> bool {
        matches!(
            self,
            SolveError::DeadlineExceeded { .. }
                | SolveError::WorkCapExceeded { .. }
                | SolveError::MemEstimateExceeded { .. }
                | SolveError::Cancelled { .. }
        )
    }
}

impl From<LiftError> for SolveError {
    fn from(e: LiftError) -> SolveError {
        SolveError::Lift(e)
    }
}

impl From<Interrupt> for SolveError {
    fn from(i: Interrupt) -> SolveError {
        match i.kind {
            ExhaustKind::Deadline { elapsed } => SolveError::DeadlineExceeded {
                phase: i.phase,
                elapsed,
            },
            ExhaustKind::WorkCap { work, cap } => SolveError::WorkCapExceeded {
                phase: i.phase,
                work,
                cap,
            },
            ExhaustKind::MemEstimate { estimate, cap } => SolveError::MemEstimateExceeded {
                phase: i.phase,
                estimate,
                cap,
            },
            ExhaustKind::Cancelled => SolveError::Cancelled { phase: i.phase },
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Lift(e) => write!(f, "{e}"),
            SolveError::DeadlineExceeded { phase, elapsed } => write!(
                f,
                "deadline exceeded in phase `{phase}` after {:.1}ms",
                elapsed.as_secs_f64() * 1e3
            ),
            SolveError::WorkCapExceeded { phase, work, cap } => write!(
                f,
                "work cap exceeded in phase `{phase}` ({work} of {cap} units)"
            ),
            SolveError::MemEstimateExceeded {
                phase,
                estimate,
                cap,
            } => write!(
                f,
                "memory estimate {estimate} exceeds cap {cap} in phase `{phase}`"
            ),
            SolveError::Cancelled { phase } => write!(f, "cancelled in phase `{phase}`"),
            SolveError::WorkerPanicked { message } => {
                write!(f, "a batch worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Lift(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LiftError::TooManyVariables { found: 3, max: 2 };
        assert!(e.to_string().contains('3'));
        let e = LiftError::ArityTooLarge {
            predicate: "R".into(),
            arity: 4,
            max: 2,
        };
        assert!(e.to_string().contains("R"));
        assert!(LiftError::NotGammaAcyclic.to_string().contains("γ-acyclic"));
        assert!(LiftError::Internal("oops".into())
            .to_string()
            .contains("oops"));
    }
}
