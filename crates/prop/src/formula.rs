//! Propositional formulas over integer-indexed variables.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a propositional variable. Variables are dense `0..num_vars`.
pub type Var = usize;

/// A propositional formula.
///
/// The representation mirrors the lineage construction of §2: n-ary
/// conjunction/disjunction (grounded quantifiers produce wide conjunctions),
/// plus negation and constants.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PropFormula {
    /// The constant true.
    Top,
    /// The constant false.
    Bottom,
    /// A propositional variable.
    Var(Var),
    /// Negation.
    Not(Box<PropFormula>),
    /// N-ary conjunction (empty = true).
    And(Vec<PropFormula>),
    /// N-ary disjunction (empty = false).
    Or(Vec<PropFormula>),
}

impl PropFormula {
    /// A variable literal.
    pub fn var(v: Var) -> Self {
        PropFormula::Var(v)
    }

    /// Negation with double-negation and constant collapsing.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PropFormula) -> Self {
        match f {
            PropFormula::Top => PropFormula::Bottom,
            PropFormula::Bottom => PropFormula::Top,
            PropFormula::Not(g) => *g,
            other => PropFormula::Not(Box::new(other)),
        }
    }

    /// N-ary conjunction with flattening and short-circuiting.
    pub fn and_all<I: IntoIterator<Item = PropFormula>>(fs: I) -> Self {
        let mut parts = Vec::new();
        for f in fs {
            match f {
                PropFormula::Top => {}
                PropFormula::Bottom => return PropFormula::Bottom,
                PropFormula::And(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => PropFormula::Top,
            1 => parts.pop().expect("checked length"),
            _ => PropFormula::And(parts),
        }
    }

    /// N-ary disjunction with flattening and short-circuiting.
    pub fn or_all<I: IntoIterator<Item = PropFormula>>(fs: I) -> Self {
        let mut parts = Vec::new();
        for f in fs {
            match f {
                PropFormula::Bottom => {}
                PropFormula::Top => return PropFormula::Top,
                PropFormula::Or(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => PropFormula::Bottom,
            1 => parts.pop().expect("checked length"),
            _ => PropFormula::Or(parts),
        }
    }

    /// Binary conjunction.
    pub fn and(a: PropFormula, b: PropFormula) -> Self {
        PropFormula::and_all([a, b])
    }

    /// Binary disjunction.
    pub fn or(a: PropFormula, b: PropFormula) -> Self {
        PropFormula::or_all([a, b])
    }

    /// Implication `a ⇒ b` as `¬a ∨ b`.
    pub fn implies(a: PropFormula, b: PropFormula) -> Self {
        PropFormula::or(PropFormula::not(a), b)
    }

    /// Bi-implication `a ⇔ b` as `(a ∧ b) ∨ (¬a ∧ ¬b)`.
    pub fn iff(a: PropFormula, b: PropFormula) -> Self {
        PropFormula::or(
            PropFormula::and(a.clone(), b.clone()),
            PropFormula::and(PropFormula::not(a), PropFormula::not(b)),
        )
    }

    /// The set of variables occurring in the formula.
    pub fn variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            PropFormula::Top | PropFormula::Bottom => {}
            PropFormula::Var(v) => {
                out.insert(*v);
            }
            PropFormula::Not(g) => g.collect_vars(out),
            PropFormula::And(gs) | PropFormula::Or(gs) => {
                for g in gs {
                    g.collect_vars(out);
                }
            }
        }
    }

    /// The largest variable index plus one (0 for a variable-free formula).
    pub fn num_vars(&self) -> usize {
        self.variables().iter().max().map_or(0, |v| v + 1)
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            PropFormula::Top | PropFormula::Bottom | PropFormula::Var(_) => 1,
            PropFormula::Not(g) => 1 + g.size(),
            PropFormula::And(gs) | PropFormula::Or(gs) => {
                1 + gs.iter().map(PropFormula::size).sum::<usize>()
            }
        }
    }

    /// Evaluates the formula under a total assignment (`assignment[v]` is the
    /// value of variable `v`).
    ///
    /// # Panics
    /// Panics if a variable index is out of bounds.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        match self {
            PropFormula::Top => true,
            PropFormula::Bottom => false,
            PropFormula::Var(v) => assignment[*v],
            PropFormula::Not(g) => !g.evaluate(assignment),
            PropFormula::And(gs) => gs.iter().all(|g| g.evaluate(assignment)),
            PropFormula::Or(gs) => gs.iter().any(|g| g.evaluate(assignment)),
        }
    }

    /// Conditions the formula on `var = value` and simplifies constants away.
    pub fn condition(&self, var: Var, value: bool) -> PropFormula {
        match self {
            PropFormula::Top => PropFormula::Top,
            PropFormula::Bottom => PropFormula::Bottom,
            PropFormula::Var(v) => {
                if *v == var {
                    if value {
                        PropFormula::Top
                    } else {
                        PropFormula::Bottom
                    }
                } else {
                    PropFormula::Var(*v)
                }
            }
            PropFormula::Not(g) => PropFormula::not(g.condition(var, value)),
            PropFormula::And(gs) => {
                PropFormula::and_all(gs.iter().map(|g| g.condition(var, value)))
            }
            PropFormula::Or(gs) => PropFormula::or_all(gs.iter().map(|g| g.condition(var, value))),
        }
    }
}

impl fmt::Display for PropFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropFormula::Top => write!(f, "⊤"),
            PropFormula::Bottom => write!(f, "⊥"),
            PropFormula::Var(v) => write!(f, "x{v}"),
            PropFormula::Not(g) => write!(f, "¬{g}"),
            PropFormula::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            PropFormula::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(PropFormula::not(PropFormula::Top), PropFormula::Bottom);
        assert_eq!(
            PropFormula::not(PropFormula::not(PropFormula::var(1))),
            PropFormula::var(1)
        );
        assert_eq!(
            PropFormula::and_all([PropFormula::Top, PropFormula::var(0)]),
            PropFormula::var(0)
        );
        assert_eq!(
            PropFormula::or_all([PropFormula::Top, PropFormula::var(0)]),
            PropFormula::Top
        );
        assert_eq!(PropFormula::and_all([]), PropFormula::Top);
        assert_eq!(PropFormula::or_all([]), PropFormula::Bottom);
    }

    #[test]
    fn evaluation() {
        // (x0 ∨ ¬x1) ∧ x2
        let f = PropFormula::and(
            PropFormula::or(PropFormula::var(0), PropFormula::not(PropFormula::var(1))),
            PropFormula::var(2),
        );
        assert!(f.evaluate(&[true, true, true]));
        assert!(!f.evaluate(&[false, true, true]));
        assert!(f.evaluate(&[false, false, true]));
        assert!(!f.evaluate(&[true, false, false]));
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.variables().len(), 3);
    }

    #[test]
    fn conditioning_eliminates_variable() {
        let f = PropFormula::or(PropFormula::var(0), PropFormula::var(1));
        assert_eq!(f.condition(0, true), PropFormula::Top);
        assert_eq!(f.condition(0, false), PropFormula::var(1));
        assert!(!f.condition(0, false).variables().contains(&0));
    }

    #[test]
    fn iff_and_implies_truth_tables() {
        let a = PropFormula::var(0);
        let b = PropFormula::var(1);
        let iff = PropFormula::iff(a.clone(), b.clone());
        let imp = PropFormula::implies(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(iff.evaluate(&[va, vb]), va == vb);
            assert_eq!(imp.evaluate(&[va, vb]), !va || vb);
        }
    }

    #[test]
    fn size_counts_nodes() {
        let f = PropFormula::and(PropFormula::var(0), PropFormula::not(PropFormula::var(1)));
        assert_eq!(f.size(), 4);
    }
}
