//! Byte-level codec primitives for the `wfomc-snap/v1` snapshot format.
//!
//! Prepared plan state (normal forms, cell tables, compiled circuits) is
//! persisted by `wfomc-serve` as a flat binary payload so daemon restarts
//! can skip replanning. This module holds the crate-neutral pieces: a
//! little-endian byte writer/reader pair ([`Enc`]/[`Dec`]) plus codecs for
//! the logic-layer types every payload embeds — [`Weight`], [`Weights`],
//! [`Predicate`] and [`Formula`] (the latter round-trips through the
//! canonical printed text, which the parser/printer pair reproduces
//! exactly).
//!
//! Decoding is defensive by construction: every read is bounds-checked and
//! returns a [`SnapError`] instead of panicking, because snapshot bytes come
//! from disk and may be truncated, corrupt, or written by a different
//! version. Callers treat any error as "replan from scratch" — a bad
//! snapshot must never change an answer, only cost time.

use std::fmt;
use std::str::FromStr;

use num_bigint::BigInt;
use num_rational::BigRational;
use num_traits::Zero;

use crate::parser::parse;
use crate::syntax::Formula;
use crate::vocabulary::Predicate;
use crate::weights::{Weight, Weights};

/// A decode failure: the snapshot bytes are truncated, corrupt, or encode
/// state this build cannot reconstruct. Always recoverable by replanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    message: String,
}

impl SnapError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        SnapError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot decode error: {}", self.message)
    }
}

impl std::error::Error for SnapError {}

/// Convenience alias for decode results.
pub type SnapResult<T> = Result<T, SnapError>;

/// An append-only little-endian byte writer.
///
/// Writers are infallible; the encoded buffer is retrieved with
/// [`into_bytes`](Enc::into_bytes).
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// A bounds-checked little-endian byte reader over a borrowed buffer.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

// `len` reads a length prefix off the wire (consuming bytes) — it is not a
// collection-size getter, so a paired `is_empty` would be meaningless.
#[allow(clippy::len_without_is_empty)]
impl<'a> Dec<'a> {
    /// Creates a reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless every byte has been consumed — trailing garbage means
    /// the payload was not produced by the matching encoder.
    pub fn finish(&self) -> SnapResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::new(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::new(format!(
                "truncated: needed {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` (little-endian).
    pub fn u16(&mut self) -> SnapResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` (little-endian).
    pub fn u32(&mut self) -> SnapResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (little-endian).
    pub fn u64(&mut self) -> SnapResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` encoded as `u64`, rejecting values that do not fit.
    pub fn usize(&mut self) -> SnapResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::new("length overflows usize"))
    }

    /// Reads a length that will be used to reserve a collection, additionally
    /// rejecting lengths larger than the bytes that remain (each element
    /// needs at least one byte, so anything bigger is corrupt — this stops a
    /// flipped length byte from triggering a huge allocation).
    pub fn len(&mut self) -> SnapResult<usize> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::new(format!(
                "declared length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a boolean byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> SnapResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::new(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> SnapResult<&'a [u8]> {
        let n = self.len()?;
        self.take(n)
    }

    /// Consumes and returns every unread byte (used for payloads whose
    /// length is carried out-of-band, e.g. in a snapshot file header).
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        out
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> SnapResult<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapError::new("invalid UTF-8 in string"))
    }
}

/// Encodes a rational weight via its canonical decimal text (`"2"`,
/// `"-1/3"`), which [`decode_weight`] parses back exactly.
pub fn encode_weight(enc: &mut Enc, w: &Weight) {
    enc.str(&w.to_string());
}

/// Decodes a weight written by [`encode_weight`].
pub fn decode_weight(dec: &mut Dec<'_>) -> SnapResult<Weight> {
    let text = dec.str()?;
    let (num, den) = match text.split_once('/') {
        Some((n, d)) => (n, d),
        None => (text.as_str(), "1"),
    };
    let num = BigInt::from_str(num).map_err(|_| SnapError::new("bad weight numerator"))?;
    let den = BigInt::from_str(den).map_err(|_| SnapError::new("bad weight denominator"))?;
    if den.is_zero() {
        return Err(SnapError::new("zero weight denominator"));
    }
    Ok(BigRational::new(num, den))
}

/// Encodes a weight function as its explicitly-set `(name, w, w̄)` entries.
pub fn encode_weights(enc: &mut Enc, weights: &Weights) {
    let entries: Vec<_> = weights.iter().collect();
    enc.usize(entries.len());
    for (name, pair) in entries {
        enc.str(name);
        encode_weight(enc, &pair.pos);
        encode_weight(enc, &pair.neg);
    }
}

/// Decodes a weight function written by [`encode_weights`].
pub fn decode_weights(dec: &mut Dec<'_>) -> SnapResult<Weights> {
    let n = dec.len()?;
    let mut out = Weights::ones();
    for _ in 0..n {
        let name = dec.str()?;
        let pos = decode_weight(dec)?;
        let neg = decode_weight(dec)?;
        out.set(name, pos, neg);
    }
    Ok(out)
}

/// Encodes a predicate symbol as `(name, arity)`.
pub fn encode_predicate(enc: &mut Enc, p: &Predicate) {
    enc.str(p.name());
    enc.usize(p.arity());
}

/// Decodes a predicate symbol written by [`encode_predicate`].
pub fn decode_predicate(dec: &mut Dec<'_>) -> SnapResult<Predicate> {
    let name = dec.str()?;
    let arity = dec.usize()?;
    Ok(Predicate::new(name, arity))
}

/// Encodes a formula as its canonical printed text. The printer/parser pair
/// round-trips exactly (`parse(format(f)) == f`), so this is both compact
/// and self-validating.
pub fn encode_formula(enc: &mut Enc, f: &Formula) {
    enc.str(&f.to_string());
}

/// Decodes a formula written by [`encode_formula`].
pub fn decode_formula(dec: &mut Dec<'_>) -> SnapResult<Formula> {
    let text = dec.str()?;
    parse(&text).map_err(|e| SnapError::new(format!("formula does not parse: {e}")))
}

/// The FNV-1a offset basis (the same constant the serve registry uses for
/// sentence keys).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the snapshot header checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::weight_ratio;

    #[test]
    fn scalar_round_trip() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.u16(300);
        enc.u32(70_000);
        enc.u64(u64::MAX);
        enc.usize(42);
        enc.bool(true);
        enc.bool(false);
        enc.str("héllo");
        enc.bytes(&[1, 2, 3]);
        let bytes = enc.into_bytes();

        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 300);
        assert_eq!(dec.u32().unwrap(), 70_000);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.usize().unwrap(), 42);
        assert!(dec.bool().unwrap());
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "héllo");
        assert_eq!(dec.bytes().unwrap(), &[1, 2, 3]);
        dec.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut enc = Enc::new();
        enc.u64(123);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes[..5]);
        assert!(dec.u64().is_err());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut enc = Enc::new();
        enc.usize(usize::MAX / 2);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert!(dec.len().is_err());
        let mut dec = Dec::new(&bytes);
        assert!(dec.bytes().is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut enc = Enc::new();
        enc.u8(1);
        enc.u8(2);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 1);
        assert!(dec.finish().is_err());
    }

    #[test]
    fn weight_round_trip_covers_signs_and_ratios() {
        for w in [
            weight_ratio(0, 1),
            weight_ratio(2, 1),
            weight_ratio(-1, 1),
            weight_ratio(1, 3),
            weight_ratio(-7, 5),
        ] {
            let mut enc = Enc::new();
            encode_weight(&mut enc, &w);
            let bytes = enc.into_bytes();
            let mut dec = Dec::new(&bytes);
            assert_eq!(decode_weight(&mut dec).unwrap(), w);
            dec.finish().unwrap();
        }
    }

    #[test]
    fn weights_round_trip() {
        let w = Weights::from_ints([("R", 2, 1), ("S", 0, -3)]);
        let mut enc = Enc::new();
        encode_weights(&mut enc, &w);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(decode_weights(&mut dec).unwrap(), w);
    }

    #[test]
    fn predicate_and_formula_round_trip() {
        let p = Predicate::new("Edge", 2);
        let f = parse("forall x. forall y. (R(x) | S(x,y))").unwrap();
        let mut enc = Enc::new();
        encode_predicate(&mut enc, &p);
        encode_formula(&mut enc, &f);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(decode_predicate(&mut dec).unwrap(), p);
        assert_eq!(decode_formula(&mut dec).unwrap(), f);
    }

    #[test]
    fn fnv1a_matches_known_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
