//! Model checking: does a structure satisfy a first-order sentence?
//!
//! Quantifiers range over the structure's domain `[n]`. The evaluator is the
//! semantic reference point for the whole library: the lineage construction
//! and every lifted algorithm are tested against it.

use std::collections::HashMap;

use wfomc_logic::term::{Term, Variable};
use wfomc_logic::Formula;

use crate::structure::Structure;

/// Evaluates a sentence on a structure.
///
/// # Panics
/// Panics if the formula has free variables (use [`evaluate_with`] to supply
/// an assignment) or mentions a constant outside the domain.
pub fn evaluate(formula: &Formula, structure: &Structure) -> bool {
    assert!(
        formula.is_sentence(),
        "evaluate() requires a sentence; use evaluate_with() for open formulas"
    );
    evaluate_with(formula, structure, &HashMap::new())
}

/// Evaluates a formula on a structure under a (possibly partial) variable
/// assignment. Every free variable of the formula must be assigned.
pub fn evaluate_with(
    formula: &Formula,
    structure: &Structure,
    assignment: &HashMap<Variable, usize>,
) -> bool {
    match formula {
        Formula::Top => true,
        Formula::Bottom => false,
        Formula::Atom(a) => {
            let tuple: Vec<usize> = a
                .args
                .iter()
                .map(|t| resolve(t, assignment, structure.domain_size()))
                .collect();
            structure.contains(a.predicate.name(), &tuple)
        }
        Formula::Equals(x, y) => {
            resolve(x, assignment, structure.domain_size())
                == resolve(y, assignment, structure.domain_size())
        }
        Formula::Not(g) => !evaluate_with(g, structure, assignment),
        Formula::And(gs) => gs.iter().all(|g| evaluate_with(g, structure, assignment)),
        Formula::Or(gs) => gs.iter().any(|g| evaluate_with(g, structure, assignment)),
        Formula::Implies(a, b) => {
            !evaluate_with(a, structure, assignment) || evaluate_with(b, structure, assignment)
        }
        Formula::Iff(a, b) => {
            evaluate_with(a, structure, assignment) == evaluate_with(b, structure, assignment)
        }
        Formula::Forall(v, g) => (0..structure.domain_size()).all(|c| {
            let mut ext = assignment.clone();
            ext.insert(v.clone(), c);
            evaluate_with(g, structure, &ext)
        }),
        Formula::Exists(v, g) => (0..structure.domain_size()).any(|c| {
            let mut ext = assignment.clone();
            ext.insert(v.clone(), c);
            evaluate_with(g, structure, &ext)
        }),
    }
}

fn resolve(term: &Term, assignment: &HashMap<Variable, usize>, domain_size: usize) -> usize {
    let value = match term {
        Term::Const(c) => c.index(),
        Term::Var(v) => *assignment
            .get(v)
            .unwrap_or_else(|| panic!("unassigned free variable {v}")),
    };
    assert!(
        value < domain_size,
        "constant {value} outside domain of size {domain_size}"
    );
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;

    #[test]
    fn evaluates_quantifiers() {
        // Structure over [2] with R = {(0,1), (1,0)} satisfies ∀x∃y R(x,y).
        let mut s = Structure::empty(2);
        s.insert("R", vec![0, 1]);
        s.insert("R", vec![1, 0]);
        assert!(evaluate(&catalog::forall_exists_edge(), &s));
        // Removing (1,0) breaks it.
        s.remove("R", &[1, 0]);
        assert!(!evaluate(&catalog::forall_exists_edge(), &s));
    }

    #[test]
    fn evaluates_equality_and_constants() {
        let s = Structure::empty(3);
        assert!(evaluate(&forall(["x"], eq("x", "x")), &s));
        assert!(!evaluate(&forall(["x", "y"], eq("x", "y")), &s));
        assert!(evaluate(&exists(["x", "y"], neq("x", "y")), &s));
        // Constant atoms.
        let mut s = Structure::empty(2);
        s.insert("R", vec![1]);
        assert!(evaluate(&atom("R", &["#1"]), &s));
        assert!(!evaluate(&atom("R", &["#0"]), &s));
    }

    #[test]
    fn evaluates_table1_sentence() {
        // Φ = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y)). With R full, Φ holds regardless.
        let mut s = Structure::empty(2);
        s.insert("R", vec![0]);
        s.insert("R", vec![1]);
        assert!(evaluate(&catalog::table1_sentence(), &s));
        // With everything empty, Φ fails (n ≥ 1).
        assert!(!evaluate(&catalog::table1_sentence(), &Structure::empty(2)));
        // Degenerate domain of size 0: universally quantified sentences hold.
        assert!(evaluate(&catalog::table1_sentence(), &Structure::empty(0)));
    }

    #[test]
    fn evaluate_with_supports_open_formulas() {
        let mut s = Structure::empty(2);
        s.insert("S", vec![0, 1]);
        let f = atom("S", &["x", "y"]);
        let mut env = HashMap::new();
        env.insert(wfomc_logic::Variable::new("x"), 0usize);
        env.insert(wfomc_logic::Variable::new("y"), 1usize);
        assert!(evaluate_with(&f, &s, &env));
        env.insert(wfomc_logic::Variable::new("y"), 0usize);
        assert!(!evaluate_with(&f, &s, &env));
    }

    #[test]
    #[should_panic(expected = "requires a sentence")]
    fn open_formula_rejected_by_evaluate() {
        evaluate(&atom("R", &["x"]), &Structure::empty(1));
    }

    #[test]
    fn transitivity_holds_on_transitive_relations() {
        let mut s = Structure::empty(3);
        s.insert("E", vec![0, 1]);
        s.insert("E", vec![1, 2]);
        assert!(!evaluate(&catalog::transitivity(), &s));
        s.insert("E", vec![0, 2]);
        assert!(evaluate(&catalog::transitivity(), &s));
    }
}
