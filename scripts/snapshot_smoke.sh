#!/usr/bin/env bash
# Cold-start smoke test for wfomc-snap/v1 plan-state snapshots, used by the
# CI cold-start job and runnable locally: boots the daemon against a fresh
# registry, registers and queries two plans, and shuts down gracefully
# (which writes/refreshes the snapshots and compacts the log). A second
# boot must come up entirely from snapshots (snap.hits == plans) and serve
# bit-identical values; a third boot — after one snapshot is corrupted and
# the other truncated — must silently replan (snap.invalid == plans) and
# STILL serve the same values: a bad snapshot costs a replan, never an
# answer.
#
#   cargo build --release -p wfomc-serve && bash scripts/snapshot_smoke.sh
#
# WFOMC_SERVE_BIN and WFOMC_SERVE_ADDR override the binary and address.
set -euo pipefail

BIN="${WFOMC_SERVE_BIN:-target/release/wfomc-serve}"
ADDR="${WFOMC_SERVE_ADDR:-127.0.0.1:7181}"
WORKDIR="$(mktemp -d)"
REGISTRY="$WORKDIR/registry.jsonl"
SNAPDIR="$WORKDIR/snapshots"

DAEMON=""
boot() {
    "$BIN" serve --addr "$ADDR" --registry "$REGISTRY" --workers 2 &
    DAEMON=$!
    for _ in $(seq 1 50); do
        if "$BIN" list --addr "$ADDR" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "daemon did not come up on $ADDR" >&2
    exit 1
}
stop() {
    "$BIN" shutdown --addr "$ADDR" >/dev/null
    wait "$DAEMON"
    DAEMON=""
}
cleanup() {
    if [ -n "$DAEMON" ]; then
        kill "$DAEMON" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

extract_id() {
    sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p'
}
value_of() { # <id> <n>
    "$BIN" query --addr "$ADDR" "$1" --n "$2" | sed -n 's/.*"value":"\([-0-9/]*\)".*/\1/p'
}
metric() { # <counter name>
    "$BIN" metrics --addr "$ADDR" | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"
}

S1='forall x. forall y. S(x) | N(x,y) | S(y)'
S2='forall x. exists y. R(x,y)'

# --- Cold boot: register two plans, record their values, shut down.
boot
ID1="$("$BIN" register --addr "$ADDR" "$S1" | extract_id)"
ID2="$("$BIN" register --addr "$ADDR" "$S2" | extract_id)"
test -n "$ID1" && test -n "$ID2" || { echo "registration returned no id" >&2; exit 1; }
V1="$(value_of "$ID1" 6)"
V2="$(value_of "$ID2" 6)"
test -n "$V1" && test -n "$V2" || { echo "query returned no value" >&2; exit 1; }
stop

test -f "$SNAPDIR/$ID1.snap" || { echo "missing snapshot $SNAPDIR/$ID1.snap" >&2; exit 1; }
test -f "$SNAPDIR/$ID2.snap" || { echo "missing snapshot $SNAPDIR/$ID2.snap" >&2; exit 1; }
"$BIN" snapshots --registry "$REGISTRY" | grep -c '"status":"ok"' | grep -qx 2 || {
    echo "expected two valid snapshots in the store listing" >&2
    exit 1
}

# --- Warm boot: every plan restores from its snapshot, values identical.
boot
HITS="$(metric 'snap.hits')"
test "$HITS" = "2" || { echo "expected 2 snapshot hits on warm boot, got '$HITS'" >&2; exit 1; }
test "$(value_of "$ID1" 6)" = "$V1" || { echo "warm boot changed $ID1's value" >&2; exit 1; }
test "$(value_of "$ID2" 6)" = "$V2" || { echo "warm boot changed $ID2's value" >&2; exit 1; }
stop

# --- Corrupt one snapshot (trailing garbage breaks the length/checksum)
# and truncate the other mid-header: the boot must fall back to replanning
# both, count them invalid, and serve the same bits as before.
printf 'garbage' >>"$SNAPDIR/$ID1.snap"
truncate -s 12 "$SNAPDIR/$ID2.snap"
"$BIN" snapshots --registry "$REGISTRY" | grep -c '"status":"invalid' | grep -qx 2 || {
    echo "store listing failed to flag the corrupted snapshots" >&2
    exit 1
}
boot
INVALID="$(metric 'snap.invalid')"
test "$INVALID" = "2" || { echo "expected 2 invalid snapshots, got '$INVALID'" >&2; exit 1; }
test "$(value_of "$ID1" 6)" = "$V1" || { echo "corrupt fallback changed $ID1's value" >&2; exit 1; }
test "$(value_of "$ID2" 6)" = "$V2" || { echo "corrupt fallback changed $ID2's value" >&2; exit 1; }
stop

# The fallback replans rewrote valid snapshots on the way out.
"$BIN" snapshots --registry "$REGISTRY" | grep -c '"status":"ok"' | grep -qx 2 || {
    echo "fallback boot did not rewrite valid snapshots" >&2
    exit 1
}

trap - EXIT
cleanup
echo "snapshot smoke: ok"
