//! Observability invariants of the solver pipeline, exercised only when the
//! `obs` feature is on (without it the registry is a compiled-out no-op and
//! there is nothing to test): identical single-threaded runs produce
//! identical counter snapshots, and counters are monotone under
//! `count_batch`.
//!
//! The metric registry is process-global, so every test takes the `serial`
//! lock and starts from `wfomc_obs::reset()`.
#![cfg(feature = "obs")]

use std::sync::{Mutex, MutexGuard};

use wfomc_core::{Problem, Solver};
use wfomc_logic::catalog;
use wfomc_logic::weights::Weights;
use wfomc_obs::MetricsSnapshot;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One fresh plan, two counts — all at n = 4, far below the engine's
/// parallelism thresholds, so the run stays on the calling thread and the
/// counter trace is exactly reproducible.
fn run_table1_once(n: usize) -> MetricsSnapshot {
    wfomc_obs::reset();
    let plan = Solver::new()
        .plan(&Problem::new(catalog::table1_sentence()))
        .expect("table1 plans");
    let weights = Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, 1)]);
    let first = plan.count(n, &weights).expect("first count");
    let second = plan.count(n, &weights).expect("second count");
    assert_eq!(first.value, second.value);
    wfomc_obs::snapshot()
}

#[test]
fn identical_runs_produce_identical_counter_snapshots() {
    let _guard = serial();
    wfomc_obs::set_enabled(true);
    let a = run_table1_once(4);
    let b = run_table1_once(4);
    // Counters and gauges must agree exactly; spans agree on how often each
    // scope closed (their wall times of course differ between runs).
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.gauges, b.gauges);
    let span_counts = |snap: &MetricsSnapshot| {
        snap.spans
            .iter()
            .map(|(name, stat)| (name.clone(), stat.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(span_counts(&a), span_counts(&b));
    // And the run must have actually recorded something.
    assert!(a.counter("plan.counts") == Some(2));
    assert!(a.counter("fo2.bind.hits") == Some(1));
    assert!(a.counter("fo2.bind.misses") == Some(1));
    assert!(a.counter("fo2.cellsum.compositions_summed").unwrap_or(0) > 0);
    wfomc_obs::set_enabled(false);
}

#[test]
fn counters_are_monotone_under_count_batch() {
    let _guard = serial();
    wfomc_obs::set_enabled(true);
    wfomc_obs::reset();
    let plan = Solver::new()
        .plan(&Problem::new(catalog::table1_sentence()))
        .expect("table1 plans");
    let weights = Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, 1)]);
    let mut previous = wfomc_obs::snapshot();
    for round in 0..3 {
        let points: Vec<(usize, Weights)> = (1..=4).map(|n| (n, weights.clone())).collect();
        let reports = plan.count_batch(&points).expect("batch evaluates");
        assert_eq!(reports.len(), points.len());
        let current = wfomc_obs::snapshot();
        for (name, value) in &current.counters {
            let before = previous.counter(name).unwrap_or(0);
            assert!(
                *value >= before,
                "counter {name} went backwards in round {round}: {before} -> {value}"
            );
        }
        assert!(
            current.counter("plan.counts").unwrap_or(0)
                >= previous.counter("plan.counts").unwrap_or(0) + points.len() as u64,
            "each batch point increments plan.counts"
        );
        previous = current;
    }
    wfomc_obs::set_enabled(false);
}
