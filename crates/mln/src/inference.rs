//! Exact MLN inference through the WFOMC reduction and the plan-then-execute
//! solver: one query = one plan, evaluated at any number of domain sizes.

use std::sync::{Arc, Mutex};

use num_traits::Zero;

use wfomc_core::{LiftError, Method, Plan, Problem, Solver};
use wfomc_logic::algebra::{Algebra, AlgebraWeights};
use wfomc_logic::syntax::Formula;
use wfomc_logic::weights::{weight_pow, Weight};

use crate::network::{MarkovLogicNetwork, MlnError};
use crate::reduction::{reduce_to_wfomc, WfomcReduction};

/// An exact inference engine for an MLN, backed by the Example 1.2 reduction
/// and the `wfomc-core` solver (which uses a lifted algorithm whenever the
/// reduced constraints allow, and grounded WMC otherwise).
///
/// Every distinct sentence the engine counts — the hard-constraint
/// conjunction Γ and each `query ∧ Γ` — is analyzed **once** into a
/// [`Plan`] and cached, so the typical MLN workload (one query asked at many
/// domain sizes, or many queries against one network) amortizes the sentence
/// analysis instead of redoing it per call.
#[derive(Debug)]
pub struct MlnEngine {
    reduction: WfomcReduction,
    solver: Solver,
    /// Plans keyed by the exact sentence counted (Γ or `query ∧ Γ`).
    plans: Mutex<Vec<(Formula, Arc<Plan>)>>,
}

impl Clone for MlnEngine {
    fn clone(&self) -> Self {
        MlnEngine {
            reduction: self.reduction.clone(),
            solver: self.solver,
            plans: Mutex::new(self.plans.lock().expect("plan cache poisoned").clone()),
        }
    }
}

impl MlnEngine {
    /// Builds the engine (applies the reduction once).
    pub fn new(mln: &MarkovLogicNetwork) -> Result<Self, MlnError> {
        Self::with_solver(mln, Solver::new())
    }

    /// Builds the engine with a custom solver configuration (e.g. the
    /// grounded-only baseline used in benchmarks).
    pub fn with_solver(mln: &MarkovLogicNetwork, solver: Solver) -> Result<Self, MlnError> {
        Ok(MlnEngine {
            reduction: reduce_to_wfomc(mln)?,
            solver,
            plans: Mutex::new(Vec::new()),
        })
    }

    /// The reduction underlying this engine.
    pub fn reduction(&self) -> &WfomcReduction {
        &self.reduction
    }

    /// The cached plan for a sentence over the reduction's vocabulary and
    /// weights, analyzing it on first use.
    fn plan_for(&self, sentence: &Formula) -> Result<Arc<Plan>, LiftError> {
        {
            let plans = self.plans.lock().expect("plan cache poisoned");
            if let Some((_, plan)) = plans.iter().find(|(s, _)| s == sentence) {
                return Ok(plan.clone());
            }
        }
        let problem = Problem::new(sentence.clone())
            .with_vocabulary(self.reduction.vocabulary.clone())
            .with_weights(self.reduction.weights.clone());
        let plan = Arc::new(self.solver.plan(&problem)?);
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        // A concurrent caller may have planned the same sentence while the
        // lock was released; keep the first entry so the cache stays
        // duplicate-free and everyone shares one plan (and its caches).
        if let Some((_, existing)) = plans.iter().find(|(s, _)| s == sentence) {
            return Ok(existing.clone());
        }
        plans.push((sentence.clone(), plan.clone()));
        Ok(plan)
    }

    /// The MLN partition function `Z(n) = Σ_D W(D)`.
    pub fn partition_function(&self, n: usize) -> Result<Weight, LiftError> {
        let report = self
            .plan_for(&self.reduction.hard_sentence)?
            .count(n, &self.reduction.weights)?;
        Ok(self.reduction.scaling_factor(n) * report.value)
    }

    /// `Pr_MLN(Φ) = WFOMC(Φ ∧ Γ) / WFOMC(Γ)` — the conditional-probability
    /// form of Example 1.2. Also reports which methods answered the two WFOMC
    /// calls.
    pub fn probability(&self, query: &Formula, n: usize) -> Result<Weight, LiftError> {
        self.probability_with_methods(query, n).map(|(p, _, _)| p)
    }

    /// As [`probability`](Self::probability), additionally returning the
    /// methods used for the numerator and denominator.
    pub fn probability_with_methods(
        &self,
        query: &Formula,
        n: usize,
    ) -> Result<(Weight, Method, Method), LiftError> {
        if !query.is_sentence() {
            return Err(LiftError::NotASentence);
        }
        // Denominator: the cached Γ plan, times `(w + w̄)^{n^arity}` for any
        // query predicate Γ's plan does not cover (both counts must range
        // over the same vocabulary for the ratio to be a probability).
        let hard_plan = self.plan_for(&self.reduction.hard_sentence)?;
        let denominator = hard_plan.count(n, &self.reduction.weights)?;
        let mut denominator_value = denominator.value;
        for p in query.vocabulary().iter() {
            if !hard_plan.vocabulary().contains(p.name()) {
                let pair = self.reduction.weights.pair_of(p);
                denominator_value *= weight_pow(&pair.total(), p.num_ground_tuples(n));
            }
        }
        if denominator_value.is_zero() {
            return Err(LiftError::Internal(format!(
                "the MLN's hard constraints are unsatisfiable over a domain of size {n}"
            )));
        }
        let numerator_sentence = Formula::and(query.clone(), self.reduction.hard_sentence.clone());
        let numerator = self
            .plan_for(&numerator_sentence)?
            .count(n, &self.reduction.weights)?;
        Ok((
            numerator.value / denominator_value,
            numerator.method,
            denominator.method,
        ))
    }

    /// [`partition_function`](Self::partition_function) in an arbitrary
    /// [`Algebra`] — e.g. [`wfomc_logic::algebra::LogF64`] for float-speed
    /// partition functions at domain sizes where the exact integers have
    /// thousands of digits.
    pub fn partition_function_in<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
    ) -> Result<A::Elem, LiftError> {
        let weights = AlgebraWeights::lift(algebra, &self.reduction.weights);
        let count = self
            .plan_for(&self.reduction.hard_sentence)?
            .count_in(n, algebra, &weights)?;
        let scaling = algebra.from_weight(&self.reduction.scaling_factor(n));
        Ok(algebra.mul(&scaling, &count))
    }

    /// [`probability`](Self::probability) in an arbitrary [`Algebra`] with
    /// division. The same cached plans serve every algebra: under
    /// [`wfomc_logic::algebra::LogF64`] this turns exact MLN inference into
    /// serving-speed approximate inference without changing any algorithm.
    ///
    /// Fails with [`LiftError::Internal`] when the normalizing count is zero
    /// (unsatisfiable hard constraints) or not a unit in the algebra.
    pub fn probability_in<A: Algebra>(
        &self,
        query: &Formula,
        n: usize,
        algebra: &A,
    ) -> Result<A::Elem, LiftError> {
        if !query.is_sentence() {
            return Err(LiftError::NotASentence);
        }
        let weights = AlgebraWeights::lift(algebra, &self.reduction.weights);
        // Denominator: the cached Γ plan, times `(w + w̄)^{n^arity}` for any
        // query predicate Γ's plan does not cover.
        let hard_plan = self.plan_for(&self.reduction.hard_sentence)?;
        let mut denominator = hard_plan.count_in(n, algebra, &weights)?;
        for p in query.vocabulary().iter() {
            if !hard_plan.vocabulary().contains(p.name()) {
                let total = weights.total(algebra, p.name());
                algebra.mul_assign(
                    &mut denominator,
                    &algebra.pow(&total, p.num_ground_tuples(n)),
                );
            }
        }
        let numerator_sentence = Formula::and(query.clone(), self.reduction.hard_sentence.clone());
        let numerator = self
            .plan_for(&numerator_sentence)?
            .count_in(n, algebra, &weights)?;
        algebra.try_div(&numerator, &denominator).ok_or_else(|| {
            LiftError::Internal(format!(
                "the MLN's normalizing count over a domain of size {n} is zero or not \
                 invertible in the {} algebra",
                algebra.name()
            ))
        })
    }

    /// Number of sentence plans currently cached (Γ plus one per distinct
    /// query asked so far).
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_semantics::{partition_function_brute, probability_brute};
    use wfomc_logic::builders::*;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    fn spouse_mln() -> MarkovLogicNetwork {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(
            weight_int(3),
            implies(
                and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
                atom("Male", &["y"]),
            ),
        );
        mln
    }

    fn smokers_mln() -> MarkovLogicNetwork {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(
            weight_int(2),
            implies(
                and(vec![atom("Smokes", &["x"]), atom("Friends", &["x", "y"])]),
                atom("Smokes", &["y"]),
            ),
        );
        mln.add_soft(weight_int(3), atom("Smokes", &["x"]));
        mln
    }

    #[test]
    fn partition_function_matches_brute_force() {
        for mln in [spouse_mln(), smokers_mln()] {
            let engine = MlnEngine::new(&mln).unwrap();
            for n in 0..=2 {
                assert_eq!(
                    engine.partition_function(n).unwrap(),
                    partition_function_brute(&mln, n),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn query_probabilities_match_brute_force() {
        let mln = spouse_mln();
        let engine = MlnEngine::new(&mln).unwrap();
        // Queries over the original vocabulary, closed sentences.
        let queries = vec![
            exists(["x"], atom("Female", &["x"])),
            forall(
                ["x", "y"],
                implies(atom("Spouse", &["x", "y"]), atom("Male", &["y"])),
            ),
            exists(["x", "y"], atom("Spouse", &["x", "y"])),
        ];
        for q in queries {
            for n in 1..=2 {
                let lifted = engine.probability(&q, n).unwrap();
                let brute = probability_brute(&mln, &q, n);
                assert_eq!(lifted, brute, "query {q}, n = {n}");
            }
        }
    }

    #[test]
    fn smokers_marginal_matches_brute_force() {
        let mln = smokers_mln();
        let engine = MlnEngine::new(&mln).unwrap();
        let q = exists(["x"], atom("Smokes", &["x"]));
        for n in 1..=2 {
            assert_eq!(
                engine.probability(&q, n).unwrap(),
                probability_brute(&mln, &q, n),
                "n = {n}"
            );
        }
    }

    #[test]
    fn reduction_keeps_queries_liftable() {
        // The reduced spouse MLN is FO², so both WFOMC calls should be
        // answered by the FO² algorithm, not by grounding.
        let mln = spouse_mln();
        let engine = MlnEngine::new(&mln).unwrap();
        let q = exists(["x"], atom("Female", &["x"]));
        let (_, num_method, den_method) = engine.probability_with_methods(&q, 4).unwrap();
        assert_eq!(num_method, Method::Fo2);
        assert_eq!(den_method, Method::Fo2);
    }

    #[test]
    fn uniform_mln_probabilities() {
        // An MLN with only a weight-1 constraint is the uniform distribution:
        // Pr(∃x Smokes(x)) over n = 2 is 1 − 1/4 = 3/4.
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(weight_int(1), atom("Smokes", &["x"]));
        let engine = MlnEngine::new(&mln).unwrap();
        let q = exists(["x"], atom("Smokes", &["x"]));
        assert_eq!(engine.probability(&q, 2).unwrap(), weight_ratio(3, 4));
    }

    #[test]
    fn one_plan_per_distinct_sentence_is_cached() {
        let engine = MlnEngine::new(&spouse_mln()).unwrap();
        let q = exists(["x"], atom("Female", &["x"]));
        assert_eq!(engine.cached_plans(), 0);
        // Repeated inference at many n reuses the Γ plan and the query plan.
        for n in 1..=3 {
            let _ = engine.probability(&q, n).unwrap();
        }
        assert_eq!(engine.cached_plans(), 2, "Γ plus one query plan");
        let _ = engine.partition_function(4).unwrap();
        assert_eq!(engine.cached_plans(), 2, "partition function reuses Γ");
        let q2 = exists(["x", "y"], atom("Spouse", &["x", "y"]));
        let _ = engine.probability(&q2, 2).unwrap();
        assert_eq!(engine.cached_plans(), 3, "a new query adds one plan");
    }

    #[test]
    fn open_queries_are_rejected() {
        let engine = MlnEngine::new(&spouse_mln()).unwrap();
        assert!(matches!(
            engine.probability(&atom("Female", &["x"]), 2),
            Err(LiftError::NotASentence)
        ));
        assert!(matches!(
            engine.probability_in(&atom("Female", &["x"]), 2, &wfomc_logic::algebra::LogF64),
            Err(LiftError::NotASentence)
        ));
    }

    #[test]
    fn log_space_inference_tracks_exact_inference() {
        use num_traits::ToPrimitive;
        use wfomc_logic::algebra::{Algebra, LogF64};

        for mln in [spouse_mln(), smokers_mln()] {
            let engine = MlnEngine::new(&mln).unwrap();
            let q = exists(["x"], atom("Smokes", &["x"]));
            let q = if mln.len() == 1 {
                exists(["x"], atom("Female", &["x"]))
            } else {
                q
            };
            for n in 1..=4 {
                // Partition function: compare in log space (the exact value
                // overflows f64 quickly).
                let z_exact = engine.partition_function(n).unwrap();
                let z_log = engine.partition_function_in(n, &LogF64).unwrap();
                let expected = LogF64.from_weight(&z_exact);
                assert_eq!(z_log.signum(), expected.signum(), "n = {n}");
                assert!(
                    (z_log.ln_abs() - expected.ln_abs()).abs() < 1e-9,
                    "n = {n}: {z_log} vs {expected}"
                );
                // Marginals are in [0, 1]: compare as plain floats.
                let p_exact = engine.probability(&q, n).unwrap().to_f64().unwrap();
                let p_log = engine.probability_in(&q, n, &LogF64).unwrap().to_f64();
                assert!(
                    (p_exact - p_log).abs() < 1e-9,
                    "n = {n}: {p_exact} vs {p_log}"
                );
            }
        }
    }

    #[test]
    fn generic_inference_reuses_the_same_plans() {
        use wfomc_logic::algebra::LogF64;

        let engine = MlnEngine::new(&spouse_mln()).unwrap();
        let q = exists(["x"], atom("Female", &["x"]));
        let _ = engine.probability(&q, 2).unwrap();
        let cached = engine.cached_plans();
        // The log-space evaluation hits the same cached plans.
        let _ = engine.probability_in(&q, 3, &LogF64).unwrap();
        assert_eq!(engine.cached_plans(), cached);
    }
}
