//! A small recursive-descent parser for the formula syntax used by examples,
//! tests and the `repro` harness.
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! formula   := iff
//! iff       := implies ( "<->" implies )*
//! implies   := or ( "->" implies )?            (right associative)
//! or        := and ( "|" and )*
//! and       := unary ( "&" unary )*
//! unary     := "!" unary | "~" unary | quant | atom-or-parens
//! quant     := ("forall" | "exists") var+ "." formula
//! atomic    := "true" | "false" | "(" formula ")"
//!            | term "=" term | term "!=" term
//!            | IDENT "(" term ("," term)* ")" | IDENT
//! term      := IDENT | "#" NUMBER
//! ```
//!
//! Identifiers starting with an upper-case letter are predicates; all other
//! identifiers are variables. `#k` denotes the domain constant `k`.

use std::fmt;

use crate::syntax::Formula;
use crate::term::Term;
use crate::vocabulary::Predicate;

/// A parse error with a human-readable message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset into the input at which the problem was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula from its textual representation.
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let mut p = Parser::new(input);
    let f = p.parse_formula()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(f)
}

/// Maximum formula nesting depth the parser accepts. Each level of
/// parenthesization, negation, quantification, or implication recursion
/// costs one stack frame, so adversarial inputs like `"((((…"` or
/// `"!!!!…"` must be cut off before they overflow the stack; 200 levels is
/// far beyond any sentence the solver can usefully evaluate.
const MAX_DEPTH: usize = 200;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    /// Bumps the recursion depth, rejecting inputs nested beyond
    /// [`MAX_DEPTH`]. Paired with [`Parser::leave`] so sibling subformulas
    /// do not accumulate.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("formula nesting too deep"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn error(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&mut self, s: &str) -> bool {
        self.skip_ws();
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.starts_with(kw.as_bytes()) {
            let after = rest.get(kw.len()).copied();
            let boundary = match after {
                None => true,
                Some(c) => !(c.is_ascii_alphanumeric() || c == b'_'),
            };
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric()
                || self.input[self.pos] == b'_'
                || self.input[self.pos] == b'\'')
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
        }
    }

    fn parse_formula(&mut self) -> Result<Formula, ParseError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.parse_implies()?;
        while self.starts_with("<->") {
            self.eat("<->");
            let right = self.parse_implies()?;
            left = Formula::iff(left, right);
        }
        Ok(left)
    }

    fn parse_implies(&mut self) -> Result<Formula, ParseError> {
        // Right associativity makes this the one binary production that
        // recurses per operator, so it counts against the nesting depth.
        self.enter()?;
        let result = self.parse_implies_inner();
        self.leave();
        result
    }

    fn parse_implies_inner(&mut self) -> Result<Formula, ParseError> {
        let left = self.parse_or()?;
        if self.starts_with("->") {
            self.eat("->");
            let right = self.parse_implies()?;
            return Ok(Formula::implies(left, right));
        }
        Ok(left)
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_and()?];
        loop {
            self.skip_ws();
            // `|` but not `|>` (future proofing) — plain single char here.
            if self.peek() == Some(b'|') {
                self.pos += 1;
                parts.push(self.parse_and()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Formula::or_all(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_unary()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'&') {
                self.pos += 1;
                parts.push(self.parse_unary()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Formula::and_all(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        self.enter()?;
        let result = self.parse_unary_inner();
        self.leave();
        result
    }

    fn parse_unary_inner(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'!') => {
                // Could be `!=`? `!=` only appears after a term, so a leading
                // `!` here is negation.
                self.pos += 1;
                Ok(Formula::not(self.parse_unary()?))
            }
            Some(b'~') => {
                self.pos += 1;
                Ok(Formula::not(self.parse_unary()?))
            }
            _ => {
                if self.eat_keyword("forall") {
                    self.parse_quantifier(true)
                } else if self.eat_keyword("exists") {
                    self.parse_quantifier(false)
                } else {
                    self.parse_atomic()
                }
            }
        }
    }

    fn parse_quantifier(&mut self, universal: bool) -> Result<Formula, ParseError> {
        let mut vars = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(".") {
                break;
            }
            // Allow comma-separated or space-separated variable lists.
            if self.eat(",") {
                continue;
            }
            match self.ident() {
                Some(name) => vars.push(name),
                None => return Err(self.error("expected variable name or `.`")),
            }
        }
        if vars.is_empty() {
            return Err(self.error("quantifier binds no variables"));
        }
        let body = self.parse_formula()?;
        Ok(if universal {
            Formula::forall_many(vars.iter().map(String::as_str), body)
        } else {
            Formula::exists_many(vars.iter().map(String::as_str), body)
        })
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        if self.peek() == Some(b'#') {
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(self.error("expected digits after `#`"));
            }
            let num: usize = std::str::from_utf8(&self.input[start..self.pos])
                .expect("digits are utf8")
                .parse()
                .map_err(|_| self.error("constant index out of range"))?;
            return Ok(Term::constant(num));
        }
        match self.ident() {
            Some(name) => Ok(Term::var(name)),
            None => Err(self.error("expected a term")),
        }
    }

    fn parse_atomic(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat("(") {
            let f = self.parse_formula()?;
            self.expect(")")?;
            return self.maybe_equality_tail(f);
        }
        if self.eat_keyword("true") {
            return Ok(Formula::Top);
        }
        if self.eat_keyword("false") {
            return Ok(Formula::Bottom);
        }
        if self.peek() == Some(b'#') {
            // A constant can only start an equality atom.
            let t = self.parse_term()?;
            return self.parse_equality_rhs(t);
        }
        let name = self
            .ident()
            .ok_or_else(|| self.error("expected an atom, quantifier, or `(`"))?;
        self.skip_ws();
        let first_char = name.chars().next().expect("ident is non-empty");
        if self.peek() == Some(b'(') && first_char.is_ascii_uppercase() {
            // Predicate with arguments.
            self.pos += 1;
            let mut args = Vec::new();
            self.skip_ws();
            if self.peek() != Some(b')') {
                loop {
                    args.push(self.parse_term()?);
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    break;
                }
            }
            self.expect(")")?;
            return Ok(Formula::atom(Predicate::new(&name, args.len()), args));
        }
        // Either a nullary predicate (uppercase) or a variable that must be
        // part of an equality atom.
        if first_char.is_ascii_uppercase() {
            // Could still be an equality between a "constant-like" name? Keep
            // it simple: uppercase identifier without parentheses is a
            // propositional (0-ary) atom.
            return Ok(Formula::atom(Predicate::new(&name, 0), vec![]));
        }
        self.parse_equality_rhs(Term::var(name))
    }

    fn parse_equality_rhs(&mut self, lhs: Term) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat("!=") {
            let rhs = self.parse_term()?;
            return Ok(Formula::not(Formula::Equals(lhs, rhs)));
        }
        if self.peek() == Some(b'=') {
            self.pos += 1;
            let rhs = self.parse_term()?;
            return Ok(Formula::Equals(lhs, rhs));
        }
        Err(self.error("a lower-case identifier must be followed by `=` or `!=`"))
    }

    fn maybe_equality_tail(&mut self, f: Formula) -> Result<Formula, ParseError> {
        // `(x) = y` is not supported; parenthesized formulas pass through.
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;

    #[test]
    fn parses_table1_sentence() {
        let f = parse("forall x. forall y. R(x) | S(x,y) | T(y)").unwrap();
        let expected = forall(
            ["x", "y"],
            or(vec![
                atom("R", &["x"]),
                atom("S", &["x", "y"]),
                atom("T", &["y"]),
            ]),
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn parses_nested_quantifiers_and_negation() {
        let f = parse("forall x. exists y. R(x,y) & !S(y)").unwrap();
        assert!(f.is_sentence());
        assert_eq!(f.distinct_variable_count(), 2);
    }

    #[test]
    fn parses_multi_variable_binder() {
        let a = parse("forall x y. R(x,y)").unwrap();
        let b = parse("forall x. forall y. R(x,y)").unwrap();
        assert_eq!(a, b);
        let c = parse("forall x, y. R(x,y)").unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn parses_equality_and_inequality() {
        let f = parse("forall x y. R(x,y) | x = y").unwrap();
        assert!(f.uses_equality());
        let g = parse("exists x y. R(x,y) & x != y").unwrap();
        assert!(g.uses_equality());
    }

    #[test]
    fn parses_constants_and_propositions() {
        let f = parse("R(#0, x) & P").unwrap();
        let expected = and(vec![atom("R", &["#0", "x"]), prop("P")]);
        assert_eq!(f, expected);
    }

    #[test]
    fn parses_implication_chain_right_assoc() {
        let f = parse("A -> B -> C").unwrap();
        let expected = implies(prop("A"), implies(prop("B"), prop("C")));
        assert_eq!(f, expected);
    }

    #[test]
    fn precedence_and_over_or() {
        let f = parse("A & B | C").unwrap();
        let expected = or(vec![and(vec![prop("A"), prop("B")]), prop("C")]);
        assert_eq!(f, expected);
    }

    #[test]
    fn round_trips_with_printer() {
        for text in [
            "forall x. forall y. R(x) | !S(x,y) | T(y)",
            "exists x. R(x,#0) & S(x)",
            "#0 = x | R(#1,#2)",
            "forall x. R(x) -> S(x)",
            "A <-> B",
            "forall x. exists y. Spouse(x,y) & Female(x) -> Male(y)",
        ] {
            let f = parse(text).unwrap();
            let printed = f.to_string();
            let g = parse(&printed).unwrap();
            assert_eq!(f, g, "round trip failed for `{text}` -> `{printed}`");
        }
    }

    #[test]
    fn error_reporting() {
        let err = parse("forall . R(x)").unwrap_err();
        assert!(err.message.contains("binds no variables"));
        let err = parse("R(x").unwrap_err();
        assert!(err.to_string().contains("expected"));
        assert!(parse("R(x) extra").is_err());
        assert!(parse("x").is_err(), "bare variable is not a formula");
    }

    #[test]
    fn adversarial_nesting_is_rejected_not_overflowed() {
        // Each of these would previously recurse once per character/token and
        // blow the stack; now they fail fast with a depth error.
        let deep_parens = format!("{}P{}", "(".repeat(100_000), ")".repeat(100_000));
        let err = parse(&deep_parens).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");

        let deep_negation = format!("{}P", "!".repeat(100_000));
        let err = parse(&deep_negation).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");

        let deep_quantifiers = format!("{}P", "forall x. ".repeat(100_000));
        let err = parse(&deep_quantifiers).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");

        let deep_implications = format!("P{}", " -> P".repeat(100_000));
        let err = parse(&deep_implications).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        // Well below the cap: 50 nested levels of everything.
        let f = format!("{}R(x){}", "(".repeat(50), ")".repeat(50));
        assert!(parse(&f).is_ok());
        let f = format!("{}R(x)", "!".repeat(50));
        assert!(parse(&f).is_ok());
        let f = format!("{}R(x)", "forall x. ".repeat(50));
        assert!(parse(&f).is_ok());
        let f = format!("P{}", " -> P".repeat(50));
        assert!(parse(&f).is_ok());
        // Iterative productions are unbounded by design: wide, not deep.
        let wide = (0..10_000).map(|_| "P").collect::<Vec<_>>().join(" & ");
        assert!(parse(&wide).is_ok());
    }

    mod round_trip {
        use super::super::parse;
        use crate::syntax::Formula;
        use crate::term::Term;
        use crate::vocabulary::Predicate;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// A byte-driven structural generator: every formula it returns is
        /// built through the normalizing `Formula` constructors (the same
        /// ones the parser uses), so `parse(format(f)) == f` must hold
        /// *exactly* — this is the invariant the JSONL registry replay and
        /// the sentence-hash registry key stand on.
        struct Gen<'a> {
            bytes: &'a [u8],
            pos: usize,
        }

        impl Gen<'_> {
            fn next(&mut self) -> u8 {
                let b = self.bytes.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                b
            }

            fn term(&mut self) -> Term {
                match self.next() % 5 {
                    0 => Term::var("x"),
                    1 => Term::var("y"),
                    2 => Term::var("z"),
                    3 => Term::constant(0),
                    _ => Term::constant(17),
                }
            }

            fn leaf(&mut self) -> Formula {
                match self.next() % 7 {
                    0 => Formula::Top,
                    1 => Formula::Bottom,
                    2 => Formula::atom(Predicate::new("P", 0), vec![]),
                    3 => {
                        let t = self.term();
                        Formula::atom(Predicate::new("R", 1), vec![t])
                    }
                    4 | 5 => {
                        let (a, b) = (self.term(), self.term());
                        Formula::atom(Predicate::new("S", 2), vec![a, b])
                    }
                    _ => {
                        let (a, b) = (self.term(), self.term());
                        Formula::Equals(a, b)
                    }
                }
            }

            fn formula(&mut self, depth: usize) -> Formula {
                if depth == 0 {
                    return self.leaf();
                }
                match self.next() % 12 {
                    0..=4 => self.leaf(),
                    5 => Formula::not(self.formula(depth - 1)),
                    6 => {
                        let (a, b) = (self.formula(depth - 1), self.formula(depth - 1));
                        Formula::and_all([a, b])
                    }
                    7 => {
                        let (a, b) = (self.formula(depth - 1), self.formula(depth - 1));
                        Formula::or_all([a, b])
                    }
                    8 => {
                        let (a, b) = (self.formula(depth - 1), self.formula(depth - 1));
                        Formula::implies(a, b)
                    }
                    9 => {
                        let (a, b) = (self.formula(depth - 1), self.formula(depth - 1));
                        Formula::iff(a, b)
                    }
                    10 => {
                        let v = ["x", "y", "z"][(self.next() % 3) as usize];
                        Formula::forall(v, self.formula(depth - 1))
                    }
                    _ => {
                        let v = ["x", "y", "z"][(self.next() % 3) as usize];
                        Formula::exists(v, self.formula(depth - 1))
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// `parse(format(f)) == f` for normalized formulas, and printing
            /// is a fixpoint (the canonical text of a formula is stable).
            #[test]
            fn parse_format_round_trips_exactly(bytes in vec(0u8..255, 0..96)) {
                let mut gen = Gen { bytes: &bytes, pos: 0 };
                let f = gen.formula(5);
                let printed = f.to_string();
                let reparsed = parse(&printed)
                    .unwrap_or_else(|e| panic!("`{printed}` failed to parse: {e}"));
                prop_assert_eq!(&reparsed, &f, "printed: {}", &printed);
                prop_assert_eq!(reparsed.to_string(), printed);
            }
        }
    }

    mod no_panic {
        use super::super::parse;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// Fragments that compose into near-miss formula syntax — much more
        /// likely to reach deep parser states than raw bytes.
        const FRAGMENTS: &[&str] = &[
            "forall",
            "exists",
            "x",
            "y",
            "R(x)",
            "S(x,y)",
            "P",
            ".",
            ",",
            "(",
            ")",
            "!",
            "~",
            "&",
            "|",
            "->",
            "<->",
            "=",
            "!=",
            "#0",
            "#18446744073709551616",
            "true",
            "false",
            " ",
            "_",
            "'",
            "R(",
            "))",
            "forall .",
            "#",
        ];

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// The parser returns `Ok` or `Err` on arbitrary fragment
            /// soup — never panics, never overflows.
            #[test]
            fn fragment_soup_never_panics(picks in vec(0usize..27, 0..64)) {
                let input: String = picks
                    .iter()
                    .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
                    .collect::<Vec<_>>()
                    .join("");
                let _ = parse(&input);
            }

            /// Raw (possibly invalid UTF-8 lossy) byte soup never panics.
            #[test]
            fn byte_soup_never_panics(bytes in vec(0u8..255, 0..256)) {
                let input = String::from_utf8_lossy(&bytes).into_owned();
                let _ = parse(&input);
            }
        }
    }
}
