//! Exact MLN inference through the WFOMC reduction and the lifted solver.

use num_traits::Zero;

use wfomc_core::{LiftError, Method, Solver};
use wfomc_logic::syntax::Formula;
use wfomc_logic::weights::Weight;

use crate::network::{MarkovLogicNetwork, MlnError};
use crate::reduction::{reduce_to_wfomc, WfomcReduction};

/// An exact inference engine for an MLN, backed by the Example 1.2 reduction
/// and the `wfomc-core` solver (which uses a lifted algorithm whenever the
/// reduced constraints allow, and grounded WMC otherwise).
#[derive(Clone, Debug)]
pub struct MlnEngine {
    reduction: WfomcReduction,
    solver: Solver,
}

impl MlnEngine {
    /// Builds the engine (applies the reduction once).
    pub fn new(mln: &MarkovLogicNetwork) -> Result<Self, MlnError> {
        Ok(MlnEngine {
            reduction: reduce_to_wfomc(mln)?,
            solver: Solver::new(),
        })
    }

    /// Builds the engine with a custom solver configuration (e.g. the
    /// grounded-only baseline used in benchmarks).
    pub fn with_solver(mln: &MarkovLogicNetwork, solver: Solver) -> Result<Self, MlnError> {
        Ok(MlnEngine {
            reduction: reduce_to_wfomc(mln)?,
            solver,
        })
    }

    /// The reduction underlying this engine.
    pub fn reduction(&self) -> &WfomcReduction {
        &self.reduction
    }

    /// The MLN partition function `Z(n) = Σ_D W(D)`.
    pub fn partition_function(&self, n: usize) -> Result<Weight, LiftError> {
        let report = self.solver.wfomc(
            &self.reduction.hard_sentence,
            &self.reduction.vocabulary,
            n,
            &self.reduction.weights,
        )?;
        Ok(self.reduction.scaling_factor(n) * report.value)
    }

    /// `Pr_MLN(Φ) = WFOMC(Φ ∧ Γ) / WFOMC(Γ)` — the conditional-probability
    /// form of Example 1.2. Also reports which methods answered the two WFOMC
    /// calls.
    pub fn probability(&self, query: &Formula, n: usize) -> Result<Weight, LiftError> {
        self.probability_with_methods(query, n).map(|(p, _, _)| p)
    }

    /// As [`probability`](Self::probability), additionally returning the
    /// methods used for the numerator and denominator.
    pub fn probability_with_methods(
        &self,
        query: &Formula,
        n: usize,
    ) -> Result<(Weight, Method, Method), LiftError> {
        if !query.is_sentence() {
            return Err(LiftError::NotASentence);
        }
        let vocabulary = self.reduction.vocabulary.extended_with(&query.vocabulary());
        let denominator = self.solver.wfomc(
            &self.reduction.hard_sentence,
            &vocabulary,
            n,
            &self.reduction.weights,
        )?;
        if denominator.value.is_zero() {
            return Err(LiftError::Internal(format!(
                "the MLN's hard constraints are unsatisfiable over a domain of size {n}"
            )));
        }
        let numerator_sentence = Formula::and(query.clone(), self.reduction.hard_sentence.clone());
        let numerator =
            self.solver
                .wfomc(&numerator_sentence, &vocabulary, n, &self.reduction.weights)?;
        Ok((
            numerator.value / denominator.value,
            numerator.method,
            denominator.method,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_semantics::{partition_function_brute, probability_brute};
    use wfomc_logic::builders::*;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    fn spouse_mln() -> MarkovLogicNetwork {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(
            weight_int(3),
            implies(
                and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
                atom("Male", &["y"]),
            ),
        );
        mln
    }

    fn smokers_mln() -> MarkovLogicNetwork {
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(
            weight_int(2),
            implies(
                and(vec![atom("Smokes", &["x"]), atom("Friends", &["x", "y"])]),
                atom("Smokes", &["y"]),
            ),
        );
        mln.add_soft(weight_int(3), atom("Smokes", &["x"]));
        mln
    }

    #[test]
    fn partition_function_matches_brute_force() {
        for mln in [spouse_mln(), smokers_mln()] {
            let engine = MlnEngine::new(&mln).unwrap();
            for n in 0..=2 {
                assert_eq!(
                    engine.partition_function(n).unwrap(),
                    partition_function_brute(&mln, n),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn query_probabilities_match_brute_force() {
        let mln = spouse_mln();
        let engine = MlnEngine::new(&mln).unwrap();
        // Queries over the original vocabulary, closed sentences.
        let queries = vec![
            exists(["x"], atom("Female", &["x"])),
            forall(
                ["x", "y"],
                implies(atom("Spouse", &["x", "y"]), atom("Male", &["y"])),
            ),
            exists(["x", "y"], atom("Spouse", &["x", "y"])),
        ];
        for q in queries {
            for n in 1..=2 {
                let lifted = engine.probability(&q, n).unwrap();
                let brute = probability_brute(&mln, &q, n);
                assert_eq!(lifted, brute, "query {q}, n = {n}");
            }
        }
    }

    #[test]
    fn smokers_marginal_matches_brute_force() {
        let mln = smokers_mln();
        let engine = MlnEngine::new(&mln).unwrap();
        let q = exists(["x"], atom("Smokes", &["x"]));
        for n in 1..=2 {
            assert_eq!(
                engine.probability(&q, n).unwrap(),
                probability_brute(&mln, &q, n),
                "n = {n}"
            );
        }
    }

    #[test]
    fn reduction_keeps_queries_liftable() {
        // The reduced spouse MLN is FO², so both WFOMC calls should be
        // answered by the FO² algorithm, not by grounding.
        let mln = spouse_mln();
        let engine = MlnEngine::new(&mln).unwrap();
        let q = exists(["x"], atom("Female", &["x"]));
        let (_, num_method, den_method) = engine.probability_with_methods(&q, 4).unwrap();
        assert_eq!(num_method, Method::Fo2);
        assert_eq!(den_method, Method::Fo2);
    }

    #[test]
    fn uniform_mln_probabilities() {
        // An MLN with only a weight-1 constraint is the uniform distribution:
        // Pr(∃x Smokes(x)) over n = 2 is 1 − 1/4 = 3/4.
        let mut mln = MarkovLogicNetwork::new();
        mln.add_soft(weight_int(1), atom("Smokes", &["x"]));
        let engine = MlnEngine::new(&mln).unwrap();
        let q = exists(["x"], atom("Smokes", &["x"]));
        assert_eq!(engine.probability(&q, 2).unwrap(), weight_ratio(3, 4));
    }

    #[test]
    fn open_queries_are_rejected() {
        let engine = MlnEngine::new(&spouse_mln()).unwrap();
        assert!(matches!(
            engine.probability(&atom("Female", &["x"]), 2),
            Err(LiftError::NotASentence)
        ));
    }
}
