//! Ergonomic helpers for constructing formulas in examples, tests and the
//! paper-sentence catalog.
//!
//! These helpers infer predicate arity from the argument count, so
//! `atom("S", &["x", "y"])` builds `S/2`. They are deliberately stringly-typed
//! for brevity; library code that already has [`Predicate`] values should use
//! the [`Formula`] smart constructors directly.

use crate::syntax::Formula;
use crate::term::Term;
use crate::vocabulary::Predicate;

/// Builds an atom `name(args…)`, inferring the arity from `args.len()`.
/// Arguments are parsed as constants when they look like `#<index>`
/// (e.g. `"#0"`), otherwise as variables.
pub fn atom(name: &str, args: &[&str]) -> Formula {
    let terms: Vec<Term> = args.iter().map(|a| parse_term(a)).collect();
    Formula::atom(Predicate::new(name, terms.len()), terms)
}

/// Builds a nullary (propositional) atom.
pub fn prop(name: &str) -> Formula {
    Formula::atom(Predicate::new(name, 0), vec![])
}

fn parse_term(s: &str) -> Term {
    if let Some(rest) = s.strip_prefix('#') {
        if let Ok(i) = rest.parse::<usize>() {
            return Term::constant(i);
        }
    }
    Term::var(s)
}

/// Negation.
pub fn not(f: Formula) -> Formula {
    Formula::not(f)
}

/// N-ary conjunction.
pub fn and(fs: Vec<Formula>) -> Formula {
    Formula::and_all(fs)
}

/// N-ary disjunction.
pub fn or(fs: Vec<Formula>) -> Formula {
    Formula::or_all(fs)
}

/// Implication.
pub fn implies(a: Formula, b: Formula) -> Formula {
    Formula::implies(a, b)
}

/// Bi-implication.
pub fn iff(a: Formula, b: Formula) -> Formula {
    Formula::iff(a, b)
}

/// Universal closure over the listed variables.
pub fn forall<const N: usize>(vars: [&str; N], f: Formula) -> Formula {
    Formula::forall_many(vars, f)
}

/// Existential closure over the listed variables.
pub fn exists<const N: usize>(vars: [&str; N], f: Formula) -> Formula {
    Formula::exists_many(vars, f)
}

/// Equality atom between two variables/constants (same `#i` syntax as [`atom`]).
pub fn eq(a: &str, b: &str) -> Formula {
    Formula::Equals(parse_term(a), parse_term(b))
}

/// Inequality `¬(a = b)`.
pub fn neq(a: &str, b: &str) -> Formula {
    Formula::not(eq(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_infers_arity_and_constants() {
        let f = atom("R", &["x", "#3"]);
        match f {
            Formula::Atom(a) => {
                assert_eq!(a.predicate.arity(), 2);
                assert!(a.args[0].is_var());
                assert_eq!(a.args[1].as_const().unwrap().index(), 3);
            }
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn prop_is_nullary() {
        match prop("X") {
            Formula::Atom(a) => assert_eq!(a.predicate.arity(), 0),
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn closures_nest_in_order() {
        let f = forall(["x", "y"], atom("R", &["x", "y"]));
        match f {
            Formula::Forall(v, inner) => {
                assert_eq!(v.name(), "x");
                match *inner {
                    Formula::Forall(v2, _) => assert_eq!(v2.name(), "y"),
                    other => panic!("expected nested forall, got {other:?}"),
                }
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn eq_and_neq() {
        assert!(eq("x", "y").uses_equality());
        match neq("x", "y") {
            Formula::Not(inner) => assert!(matches!(*inner, Formula::Equals(..))),
            other => panic!("expected negation, got {other:?}"),
        }
    }
}
