//! Test configuration and the deterministic RNG driving generation.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable through the `PROPTEST_CASES` environment
    /// variable (matching the real crate) so CI can pin an explicit budget
    /// and local runs can crank it up without editing tests.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 generator; seeded from the test name so every
/// test gets a distinct but reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable per-test seed.
        let mut hash = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng { state: hash }
    }

    /// An RNG with an explicit seed — one stored case in a
    /// `proptest-regressions/` file is exactly one such seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_are_deterministic_and_distinct() {
        let mut a1 = TestRng::for_test("alpha");
        let mut a2 = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        let s1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let s3: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
