//! The FO² lifted algorithm (PTIME data complexity, Appendix C of the paper).
//!
//! The pipeline is:
//!
//! 1. [`normalize`] — Scott-style normal form: nested quantified subformulas
//!    are named by fresh "definition" predicates (weight (1,1)), existential
//!    pieces are Skolemized per Lemma 3.3 (fresh predicates with weight
//!    (1,−1)), and everything is conjoined into a single quantifier-free
//!    matrix `Ψ(x, y)` under an implicit `∀x∀y`.
//! 2. [`algorithm`] — Shannon expansion over the nullary predicates, then the
//!    1-type (cell) decomposition: enumerate the valid cells, build the
//!    two-element table `r_{ij}`, and sum
//!    `Σ_{n₁+…+n_C = n} (n; n₁…n_C) Π_c u_c^{n_c} Π_{i≤j} r_{ij}^{…}`
//!    over all compositions of the domain.
//!
//! The result is exact for every FO² sentence over predicates of arity ≤ 2
//! (without constants) and runs in time polynomial in `n` for a fixed
//! sentence, which is exactly the statement reviewed in Appendix C.

pub mod algorithm;
pub mod cells;
pub mod cellsum;
pub mod normalize;
pub mod prepare;

pub use algorithm::{wfomc_fo2, wfomc_fo2_with_stats, Fo2Stats};
pub use cellsum::{cell_sum, cell_sum_bound, cell_sum_elems, cell_sum_weights, CellSumStats};
pub use normalize::{fo2_normal_form, Fo2Shape, VAR_X, VAR_Y};
pub use prepare::Fo2Prepared;
