//! Fault injection across the governed pipeline: each instrumented loop is
//! forced to expire (and, for the batch fan-out, to panic) via the
//! feature-gated failpoints in `wfomc-guard`, proving the failure paths are
//! real code that surfaces the right `SolveError` and leaves every cache
//! retryable. Compiled (and run in CI) only with `--features failpoints`.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use wfomc_core::{ExecutionLimits, Problem, SolveError, Solver};
use wfomc_guard::{arm_failpoint, clear_failpoints, FailAction};
use wfomc_logic::catalog;
use wfomc_logic::weights::Weights;
use wfomc_prop::WmcBackend;

/// The failpoint registry is process-global, so these tests serialize on one
/// lock and disarm everything on the way out (even on assertion failure).
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

struct Armed;

impl Drop for Armed {
    fn drop(&mut self) {
        clear_failpoints();
    }
}

fn serialized() -> (std::sync::MutexGuard<'static, ()>, Armed) {
    let guard = REGISTRY_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    clear_failpoints();
    (guard, Armed)
}

/// Forces `phase` to expire, runs `solve`, and checks the structured error
/// names the phase; then disarms and checks the *same plan* recovers with a
/// value equal to `expected`.
fn assert_expires_then_recovers(
    phase: &str,
    solve: impl Fn() -> Result<wfomc_core::SolverReport, SolveError>,
) {
    arm_failpoint(phase, FailAction::Expire);
    match solve() {
        Err(SolveError::DeadlineExceeded { phase: hit, .. }) => {
            assert_eq!(hit, phase, "interrupt names the instrumented loop")
        }
        other => panic!("armed `{phase}` must expire, got {other:?}"),
    }
    clear_failpoints();
    let _ = solve().unwrap_or_else(|e| panic!("retry after disarming `{phase}` failed: {e}"));
}

#[test]
fn fo2_phases_expire_and_recover() {
    let (_lock, _armed) = serialized();
    let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
    let expected = plan.count(3, &Weights::ones()).unwrap().value;
    for phase in ["fo2.bind", "fo2.cellsum"] {
        assert_expires_then_recovers(phase, || {
            plan.count_with_limits(3, &Weights::ones(), &ExecutionLimits::none(), None)
        });
    }
    assert_eq!(plan.count(3, &Weights::ones()).unwrap().value, expected);
}

#[test]
fn fo2_preparation_expires_and_recovers() {
    let (_lock, _armed) = serialized();
    let sentence = catalog::table1_sentence();
    let vocabulary = sentence.vocabulary();
    arm_failpoint("fo2.prepare", FailAction::Expire);
    let err = wfomc_core::fo2::Fo2Prepared::prepare_guarded(
        &sentence,
        &vocabulary,
        &wfomc_guard::Guard::unarmed(),
    )
    .map(|_| ())
    .unwrap_err();
    assert!(
        matches!(
            err,
            SolveError::DeadlineExceeded {
                phase: "fo2.prepare",
                ..
            }
        ),
        "{err}"
    );
    clear_failpoints();
    assert!(wfomc_core::fo2::Fo2Prepared::prepare_guarded(
        &sentence,
        &vocabulary,
        &wfomc_guard::Guard::unarmed(),
    )
    .is_ok());
}

#[test]
fn grounded_phases_expire_and_recover() {
    let (_lock, _armed) = serialized();
    let cases = [
        (WmcBackend::Dpll, "ground.lineage"),
        (WmcBackend::Dpll, "prop.dpll"),
        (WmcBackend::Enumerate, "prop.enumerate"),
        (WmcBackend::Circuit, "circuit.compile"),
    ];
    for (backend, phase) in cases {
        let solver = Solver::builder()
            .lifted(false)
            .ground_backend(backend)
            .build();
        let plan = solver.plan(&Problem::new(catalog::transitivity())).unwrap();
        assert_expires_then_recovers(phase, || {
            plan.count_with_limits(2, &Weights::ones(), &ExecutionLimits::none(), None)
        });
        // The recovered value matches a never-faulted plan.
        let clean = Solver::builder()
            .lifted(false)
            .ground_backend(backend)
            .build()
            .plan(&Problem::new(catalog::transitivity()))
            .unwrap()
            .count(2, &Weights::ones())
            .unwrap()
            .value;
        assert_eq!(plan.count(2, &Weights::ones()).unwrap().value, clean);
    }
}

#[test]
fn cq_reduction_expires_and_recovers() {
    let (_lock, _armed) = serialized();
    // Plan *before* arming: method selection probes the CQ reduction.
    let plan = Problem::new(catalog::chain_query(3).to_formula())
        .plan()
        .unwrap();
    let expected = plan.count(2, &Weights::ones()).unwrap().value;
    assert_expires_then_recovers("cq.reduce", || {
        plan.count_with_limits(2, &Weights::ones(), &ExecutionLimits::none(), None)
    });
    assert_eq!(plan.count(2, &Weights::ones()).unwrap().value, expected);
}

#[test]
fn forced_worker_panics_are_contained_per_point() {
    let (_lock, _armed) = serialized();
    let plan = Problem::new(catalog::table1_sentence()).plan().unwrap();
    let points: Vec<(usize, Weights)> = (2..=5).map(|n| (n, Weights::ones())).collect();
    arm_failpoint("fo2.cellsum", FailAction::Panic);
    let results = plan.count_batch_results(&points);
    assert_eq!(results.len(), points.len());
    for result in &results {
        match result {
            Err(SolveError::WorkerPanicked { message }) => {
                assert!(message.contains("fo2.cellsum"), "{message}")
            }
            other => panic!("forced panic must be contained per point, got {other:?}"),
        }
    }
    // Containment never poisons the plan: disarm and the same batch is clean.
    clear_failpoints();
    let clean = plan.count_batch_results(&points);
    for (result, (n, w)) in clean.iter().zip(&points) {
        assert_eq!(
            result.as_ref().unwrap().value,
            plan.count(*n, w).unwrap().value
        );
    }
}
