//! The tractability landscape of Figure 1 and Table 2, experienced from the
//! solver's point of view: which sentences get a lifted (polynomial-time)
//! algorithm, which fall back to grounding, and how the query hypergraphs
//! classify in Fagin's acyclicity hierarchy.
//!
//! Run with `cargo run --release --example complexity_frontier`.

use std::time::Instant;

use wfomc::prelude::*;

fn main() {
    let solver = Solver::new();

    println!("== Figure 1: conjunctive-query landscape ==\n");
    let queries: Vec<(&str, ConjunctiveQuery)> = vec![
        ("chain of length 3 (γ-acyclic)", catalog::chain_query(3)),
        ("star with 3 rays (γ-acyclic)", catalog::star_query(3)),
        (
            "R(x),S(x,y),T(y)  (Table 1 dual)",
            catalog::table1_dual_cq(),
        ),
        ("c_γ = R(x,z),S(x,y,z),T(y,z)", catalog::c_gamma()),
        (
            "c_jtdb = R(x,y,z,u),S(x,y),T(x,z),V(x,u)",
            catalog::c_jtdb(),
        ),
        (
            "typed 3-cycle C₃ (conjectured hard)",
            catalog::typed_cycle_cq(3),
        ),
        (
            "typed 4-cycle C₄ (conjectured hard)",
            catalog::typed_cycle_cq(4),
        ),
    ];
    println!(
        "{:<42} {:>10} {:>18} {:>14}",
        "query", "acyclicity", "solver method", "FOMC at n=2"
    );
    for (name, q) in &queries {
        let class = query_hypergraph(q).classify();
        let sentence = q.to_formula();
        let report = solver.fomc(&sentence, 2).expect("solver always answers");
        println!(
            "{:<42} {:>10} {:>18} {:>14}",
            name,
            format!("{class:?}"),
            report.method.to_string(),
            report.value
        );
    }

    println!("\n== Scaling: lifted vs grounded on the Table 1 dual CQ ==\n");
    let q = catalog::table1_dual_cq();
    let sentence = q.to_formula();
    println!("{:>4} {:>14} {:>14}", "n", "lifted (ms)", "grounded (ms)");
    for n in [2usize, 3, 4, 6, 8, 12, 16] {
        let t0 = Instant::now();
        let lifted = gamma_acyclic_wfomc(&q, n, &Weights::ones()).unwrap();
        let lifted_ms = t0.elapsed().as_secs_f64() * 1e3;
        let grounded_ms = if n <= 4 {
            let t1 = Instant::now();
            let grounded = GroundSolver::new().fomc(&sentence, n);
            assert_eq!(grounded, lifted, "cross-check failed at n = {n}");
            format!("{:.2}", t1.elapsed().as_secs_f64() * 1e3)
        } else {
            "(skipped: exponential)".to_string()
        };
        println!("{n:>4} {:>14.2} {:>14}", lifted_ms, grounded_ms);
    }

    println!("\n== Table 2: the open problems fall back to grounding ==\n");
    println!(
        "{:<38} {:>16} {:>14}",
        "sentence", "solver method", "FOMC at n=2"
    );
    for (name, f) in catalog::table2_open_problems() {
        let report = solver.fomc(&f, 2).expect("solver always answers");
        println!(
            "{:<38} {:>16} {:>14}",
            name,
            report.method.to_string(),
            report.value
        );
    }

    println!("\n== Theorem 3.7: QS4 needs its own dynamic program ==\n");
    let qs4 = catalog::qs4();
    println!("{:>4} {:>30} {:>12}", "n", "WFOMC(QS4, n)", "method");
    for n in [1usize, 2, 3, 5, 8, 12, 20] {
        let report = solver.fomc(&qs4, n).unwrap();
        println!(
            "{n:>4} {:>30} {:>12}",
            truncate(&report.value.to_string(), 28),
            report.method
        );
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…({} digits)", &s[..8], s.len())
    }
}
