//! # wfomc-mln
//!
//! Markov Logic Networks (MLNs) — the paper's motivating application
//! (Examples 1.1 and 1.2).
//!
//! An MLN is a finite set of *soft* constraints `(w, ϕ(x̄))` and *hard*
//! constraints `(∞, ϕ)`. Over a finite domain it defines a weight for every
//! structure (`W(D) = Π w` over the soft-constraint groundings satisfied by
//! `D`, with hard constraints acting as a filter), and probabilities by
//! normalization.
//!
//! Two inference paths are provided and cross-checked against each other:
//!
//! * [`ground_semantics`] — the textbook definition, evaluated by enumerating
//!   structures; exponential, used as ground truth;
//! * [`reduction`] + [`inference`] — the Example 1.2 reduction: each soft
//!   constraint `(w, ϕ(x̄))` becomes a hard constraint `∀x̄ (R(x̄) ∨ ϕ(x̄))` plus
//!   a fresh relation `R` with symmetric tuple weight `1/(w−1)`; MLN
//!   probabilities become conditional probabilities over a symmetric
//!   tuple-independent distribution, i.e. a pair of symmetric WFOMC calls,
//!   answered by the `wfomc-core` solver (lifted whenever the constraint
//!   structure allows, exactly as the paper advocates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ground_semantics;
pub mod inference;
pub mod network;
pub mod reduction;

pub use inference::MlnEngine;
pub use network::{ConstraintWeight, MarkovLogicNetwork, MlnConstraint, MlnError};
pub use reduction::WfomcReduction;
