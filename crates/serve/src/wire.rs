//! The `wfomc-serve/v1` wire schema: typed errors, the weights codec, and
//! the request-limits mapping.
//!
//! Everything the service writes goes through [`wfomc_obs::json`] (the
//! workspace's shared hand-written JSON home) with `schema` first and the
//! remaining keys in a fixed documented order, mirroring `wfomc-obs/v1` and
//! `wfomc-report/v1`. Everything it reads comes through [`crate::json`].
//!
//! ## Weights on the wire
//!
//! A weight table is an object keyed by predicate name; each value is the
//! pair `[w, w̄]` (positive and negative literal weight). Each component may
//! be written as
//!
//! * an integer: `3`,
//! * a two-element integer array `[num, den]`: `[1, 3]`,
//! * or a string in `num` / `num/den` form: `"22/7"` — the only form with
//!   arbitrary precision, and the one the service itself always emits
//!   (responses and the JSONL registry log), because exact rationals
//!   overflow JSON numbers.
//!
//! ## Limits on the wire
//!
//! Untrusted queries buy PR-7 governance with three optional body keys:
//! `timeout_ms` → [`ExecutionLimits::with_deadline`], `work_cap` →
//! [`ExecutionLimits::with_work_cap`], `mem_cap` →
//! [`ExecutionLimits::with_mem_estimate_cap`]. Exhaustion surfaces as a
//! typed `422` error naming the structured [`SolveError`] variant.

use std::time::Duration;

use wfomc_core::error::{LiftError, SolveError};
use wfomc_guard::ExecutionLimits;
use wfomc_logic::weights::{Weight, Weights};
use wfomc_obs::json::{json_string, JsonObject};

use crate::json::Value;

/// The schema tag stamped on every response body.
pub const SCHEMA: &str = "wfomc-serve/v1";

/// A typed service error: an HTTP status plus the JSON error body.
#[derive(Clone, Debug)]
pub struct ApiError {
    /// The HTTP status code.
    pub status: u16,
    /// The stable error discriminator (`deadline_exceeded`, …).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Extra typed fields (`key`, pre-serialized JSON value).
    pub extra: Vec<(&'static str, String)>,
}

impl ApiError {
    /// 400: the request body or path could not be understood.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            kind: "bad_request",
            message: message.into(),
            extra: Vec::new(),
        }
    }

    /// 404: no plan is registered under the id.
    pub fn unknown_plan(id: &str) -> ApiError {
        ApiError {
            status: 404,
            kind: "unknown_plan",
            message: format!("no plan registered under id `{id}`"),
            extra: vec![("id", json_string(id))],
        }
    }

    /// 404: no route matches the path.
    pub fn not_found(path: &str) -> ApiError {
        ApiError {
            status: 404,
            kind: "not_found",
            message: format!("no route matches `{path}`"),
            extra: Vec::new(),
        }
    }

    /// 405: the route exists but not under this HTTP method.
    pub fn method_not_allowed(method: &str, path: &str) -> ApiError {
        ApiError {
            status: 405,
            kind: "method_not_allowed",
            message: format!("`{method}` is not supported on `{path}`"),
            extra: Vec::new(),
        }
    }

    /// 413: the request body exceeds the server's cap.
    pub fn payload_too_large(limit: usize) -> ApiError {
        ApiError {
            status: 413,
            kind: "payload_too_large",
            message: format!("request body exceeds the {limit}-byte limit"),
            extra: Vec::new(),
        }
    }

    /// 422: the sentence parsed but no implemented method can plan it.
    pub fn plan_failed(err: &LiftError) -> ApiError {
        ApiError {
            status: 422,
            kind: "plan_failed",
            message: err.to_string(),
            extra: Vec::new(),
        }
    }

    /// 503: the daemon is draining after a shutdown request.
    pub fn shutting_down() -> ApiError {
        ApiError {
            status: 503,
            kind: "shutting_down",
            message: "the server is draining and no longer accepts work".to_string(),
            extra: Vec::new(),
        }
    }

    /// 422 with the structured [`SolveError`] variant as the error kind —
    /// how per-request governance outcomes reach the client without losing
    /// their type.
    pub fn from_solve(err: &SolveError) -> ApiError {
        let mut extra: Vec<(&'static str, String)> = Vec::new();
        let kind = match err {
            SolveError::Lift(_) => "lift_error",
            SolveError::DeadlineExceeded { phase, elapsed } => {
                extra.push(("phase", json_string(phase)));
                extra.push(("elapsed_ms", format!("{:.3}", elapsed.as_secs_f64() * 1e3)));
                "deadline_exceeded"
            }
            SolveError::WorkCapExceeded { phase, work, cap } => {
                extra.push(("phase", json_string(phase)));
                extra.push(("work", work.to_string()));
                extra.push(("cap", cap.to_string()));
                "work_cap_exceeded"
            }
            SolveError::MemEstimateExceeded {
                phase,
                estimate,
                cap,
            } => {
                extra.push(("phase", json_string(phase)));
                extra.push(("estimate", estimate.to_string()));
                extra.push(("cap", cap.to_string()));
                "mem_estimate_exceeded"
            }
            SolveError::Cancelled { phase } => {
                extra.push(("phase", json_string(phase)));
                "cancelled"
            }
            SolveError::WorkerPanicked { .. } => "worker_panicked",
        };
        ApiError {
            status: 422,
            kind,
            message: err.to_string(),
            extra,
        }
    }

    /// The error object alone (`{"kind":…,"message":…,…}`), for embedding
    /// in per-point batch results.
    pub fn to_error_object(&self) -> String {
        let mut err = JsonObject::new();
        err.field_str("kind", self.kind);
        err.field_str("message", &self.message);
        for (key, raw) in &self.extra {
            err.field_raw(key, raw);
        }
        err.finish()
    }

    /// The full response body: `{"schema":…,"error":{…}}`.
    pub fn to_body(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("schema", SCHEMA);
        obj.field_raw("error", &self.to_error_object());
        obj.finish()
    }
}

/// Parses one weight component (see the module docs for the three forms).
fn weight_from_json(v: &Value) -> Result<Weight, String> {
    match v {
        Value::Int(i) => Ok(wfomc_logic::weights::weight_int(*i)),
        Value::Arr(pair) => match pair.as_slice() {
            [num, den] => {
                let num = num
                    .as_i64()
                    .ok_or("rational numerator must be an integer")?;
                let den = den
                    .as_i64()
                    .ok_or("rational denominator must be an integer")?;
                if den == 0 {
                    return Err("rational denominator must be non-zero".to_string());
                }
                Ok(wfomc_logic::weights::weight_ratio(num, den))
            }
            _ => Err("a rational array must be exactly [num, den]".to_string()),
        },
        Value::Str(s) => weight_from_str(s),
        Value::Float(_) => Err(
            "floating-point weights are not exact; send an integer, [num, den], or \
                 a \"num/den\" string"
                .to_string(),
        ),
        _ => Err("a weight must be an integer, [num, den], or a \"num/den\" string".to_string()),
    }
}

/// Parses `"num"` / `"num/den"` with arbitrary precision.
fn weight_from_str(s: &str) -> Result<Weight, String> {
    use std::str::FromStr;
    let (num, den) = match s.split_once('/') {
        Some((num, den)) => (num.trim(), den.trim()),
        None => (s.trim(), "1"),
    };
    let num = num_bigint::BigInt::from_str(num)
        .map_err(|_| format!("`{s}` is not a valid rational numerator"))?;
    let den = num_bigint::BigInt::from_str(den)
        .map_err(|_| format!("`{s}` is not a valid rational denominator"))?;
    if den == num_bigint::BigInt::from(0) {
        return Err(format!("`{s}` has a zero denominator"));
    }
    Ok(num_rational::BigRational::new(num, den))
}

/// Parses a full weight table from the request's `weights` member.
pub fn weights_from_json(v: &Value) -> Result<Weights, ApiError> {
    let fields = v
        .as_obj()
        .ok_or_else(|| ApiError::bad_request("`weights` must be an object of [w, w̄] pairs"))?;
    let mut weights = Weights::ones();
    for (name, pair) in fields {
        let items = pair
            .as_arr()
            .filter(|items| items.len() == 2)
            .ok_or_else(|| {
                ApiError::bad_request(format!("`weights.{name}` must be a [w, w̄] pair"))
            })?;
        let pos = weight_from_json(&items[0])
            .map_err(|e| ApiError::bad_request(format!("`weights.{name}[0]`: {e}")))?;
        let neg = weight_from_json(&items[1])
            .map_err(|e| ApiError::bad_request(format!("`weights.{name}[1]`: {e}")))?;
        weights.set(name.clone(), pos, neg);
    }
    Ok(weights)
}

/// Serializes a weight table in the service's canonical form: predicate
/// names sorted (the underlying map is ordered), every component a
/// `"num/den"` string.
pub fn weights_to_json(weights: &Weights) -> String {
    let mut obj = JsonObject::new();
    for (name, pair) in weights.iter() {
        let mut arr = wfomc_obs::json::JsonArray::new();
        arr.push_str(&pair.pos.to_string());
        arr.push_str(&pair.neg.to_string());
        obj.field_raw(name, &arr.finish());
    }
    obj.finish()
}

/// Maps the optional request budget keys onto [`ExecutionLimits`].
pub fn limits_from_json(body: &Value) -> Result<ExecutionLimits, ApiError> {
    let mut limits = ExecutionLimits::none();
    if let Some(v) = body.get("timeout_ms") {
        let ms = v
            .as_u64()
            .ok_or_else(|| ApiError::bad_request("`timeout_ms` must be a non-negative integer"))?;
        limits = limits.with_deadline(Duration::from_millis(ms));
    }
    if let Some(v) = body.get("work_cap") {
        let cap = v
            .as_u64()
            .ok_or_else(|| ApiError::bad_request("`work_cap` must be a non-negative integer"))?;
        limits = limits.with_work_cap(cap);
    }
    if let Some(v) = body.get("mem_cap") {
        let cap = v
            .as_u64()
            .ok_or_else(|| ApiError::bad_request("`mem_cap` must be a non-negative integer"))?;
        limits = limits.with_mem_estimate_cap(cap);
    }
    Ok(limits)
}

/// Reads the required domain size `n` from a request or batch-point object.
pub fn n_from_json(body: &Value) -> Result<usize, ApiError> {
    body.get("n")
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| ApiError::bad_request("`n` must be present and a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn weights_accept_all_three_component_forms() {
        let v = parse(r#"{"R": [3, 1], "S": [[1, 3], "2/7"], "T": ["-4", [2, -6]]}"#).unwrap();
        let w = weights_from_json(&v).unwrap();
        assert_eq!(w.pair("R").pos, weight_int(3));
        assert_eq!(w.pair("S").pos, weight_ratio(1, 3));
        assert_eq!(w.pair("S").neg, weight_ratio(2, 7));
        assert_eq!(w.pair("T").pos, weight_int(-4));
        assert_eq!(w.pair("T").neg, weight_ratio(-1, 3));
        // Unmentioned predicates default to (1, 1).
        assert_eq!(w.pair("Unmentioned").pos, weight_int(1));
    }

    #[test]
    fn weights_round_trip_through_the_canonical_string_form() {
        let v = parse(r#"{"R": [[1, 3], 2], "S": ["100000000000000000000000", 1]}"#).unwrap();
        let w = weights_from_json(&v).unwrap();
        let text = weights_to_json(&w);
        let back = weights_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(w, back);
        assert!(text.contains("\"R\":[\"1/3\",\"2\"]"), "{text}");
        assert!(text.contains("100000000000000000000000"), "{text}");
    }

    #[test]
    fn weights_reject_floats_and_zero_denominators() {
        for bad in [
            r#"{"R": [1.5, 1]}"#,
            r#"{"R": [[1, 0], 1]}"#,
            r#"{"R": ["1/0", 1]}"#,
            r#"{"R": [1]}"#,
            r#"{"R": 1}"#,
            r#"[1]"#,
        ] {
            let v = parse(bad).unwrap();
            let err = weights_from_json(&v).unwrap_err();
            assert_eq!(err.status, 400, "{bad} should be a 400");
        }
    }

    #[test]
    fn limits_map_all_three_budget_keys() {
        let body =
            parse(r#"{"n": 5, "timeout_ms": 250, "work_cap": 1000, "mem_cap": 4096}"#).unwrap();
        let limits = limits_from_json(&body).unwrap();
        assert_eq!(limits.deadline, Some(Duration::from_millis(250)));
        assert_eq!(limits.work_cap, Some(1000));
        assert_eq!(limits.mem_estimate_cap, Some(4096));
        assert_eq!(n_from_json(&body).unwrap(), 5);

        let none = parse(r#"{"n": 5}"#).unwrap();
        assert!(limits_from_json(&none).unwrap().is_unlimited());
        assert!(limits_from_json(&parse(r#"{"timeout_ms": -1}"#).unwrap()).is_err());
        assert!(n_from_json(&parse(r#"{"n": "five"}"#).unwrap()).is_err());
    }

    #[test]
    fn solve_errors_become_typed_422_bodies() {
        let err = ApiError::from_solve(&SolveError::DeadlineExceeded {
            phase: "fo2.cellsum",
            elapsed: Duration::from_millis(125),
        });
        assert_eq!(err.status, 422);
        assert_eq!(err.kind, "deadline_exceeded");
        let body = err.to_body();
        assert!(
            body.starts_with("{\"schema\":\"wfomc-serve/v1\",\"error\":{"),
            "{body}"
        );
        assert!(body.contains("\"kind\":\"deadline_exceeded\""), "{body}");
        assert!(body.contains("\"phase\":\"fo2.cellsum\""), "{body}");
        assert!(body.contains("\"elapsed_ms\":125.000"), "{body}");

        let cap = ApiError::from_solve(&SolveError::WorkCapExceeded {
            phase: "prop.dpll",
            work: 2048,
            cap: 1000,
        });
        assert_eq!(cap.kind, "work_cap_exceeded");
        assert!(cap.to_body().contains("\"work\":2048"), "{}", cap.to_body());
    }
}
