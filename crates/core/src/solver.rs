//! A front-door solver that picks the best applicable counting method.
//!
//! The dispatch order mirrors the paper's tractability landscape:
//!
//! 1. the QS4 dynamic program (Theorem 3.7) for its specific sentence;
//! 2. the FO² cell algorithm (Appendix C) for sentences with at most two
//!    distinct variables and predicates of arity ≤ 2;
//! 3. the γ-acyclic conjunctive-query algorithm (Theorem 3.6);
//! 4. grounding + weighted model counting — always correct, exponential in
//!    `n`, and exactly what the paper's hardness results (Theorem 3.1,
//!    Corollary 3.2, Table 2) say cannot be avoided in general.
//!
//! Since the analysis is independent of the domain size and the weights, the
//! selection lives in [`crate::plan`]: [`Solver::plan`] analyzes a
//! [`crate::Problem`] once into a [`crate::Plan`] whose counts are cheap to
//! repeat, and [`Solver::wfomc`] is the one-shot plan-then-count wrapper.

use num_traits::Zero;

use wfomc_logic::syntax::Formula;
use wfomc_logic::vocabulary::Vocabulary;
use wfomc_logic::weights::{Weight, Weights};
use wfomc_obs::json::JsonObject;
use wfomc_prop::WmcBackend;

use crate::error::LiftError;
use crate::fo2::Fo2Stats;
use crate::plan::Problem;

/// Which algorithm produced a result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// Theorem 3.7's dynamic program.
    Qs4,
    /// The FO² cell algorithm (Appendix C).
    Fo2,
    /// The γ-acyclic conjunctive-query algorithm (Theorem 3.6).
    GammaAcyclicCq,
    /// Grounding to the propositional lineage plus weighted model counting.
    Ground,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Method::Qs4 => "qs4-dynamic-program",
            Method::Fo2 => "fo2-cells",
            Method::GammaAcyclicCq => "gamma-acyclic-cq",
            Method::Ground => "grounded-wmc",
        };
        write!(f, "{name}")
    }
}

/// Hit/miss accounting of a plan's internal caches at the time a count
/// returned. Maintained unconditionally (plain integers updated inside locks
/// the caches already take), so one-shot runs print cache behavior without
/// the `obs` feature and the CI hit-rate gate works on default builds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// FO² weight-binding LRU hits across the plan's lifetime.
    pub fo2_bind_hits: u64,
    /// FO² weight-binding LRU misses (each one ran a full bind).
    pub fo2_bind_misses: u64,
    /// Weight bindings currently cached by the FO² keyed LRU.
    pub fo2_cached_bindings: usize,
    /// Ground-plan LRU hits (a cached lineage/d-DNNF was reused).
    pub ground_hits: u64,
    /// Ground-plan LRU misses (each one ground the sentence).
    pub ground_misses: u64,
    /// Groundings currently cached per domain size.
    pub ground_cached: usize,
    /// γ-acyclic reduction memo hits across the plan's lifetime.
    pub cq_memo_hits: u64,
    /// γ-acyclic reduction memo misses (each one ran a reduction rule).
    pub cq_memo_misses: u64,
    /// Residual query shapes currently memoized.
    pub cq_memo_len: usize,
}

impl PlanCacheStats {
    /// Hit rate of the FO² binding LRU in `[0, 1]`, or `None` before the
    /// first bind.
    pub fn fo2_bind_hit_rate(&self) -> Option<f64> {
        hit_rate(self.fo2_bind_hits, self.fo2_bind_misses)
    }

    /// Hit rate of the ground-plan LRU in `[0, 1]`, or `None` before the
    /// first grounding.
    pub fn ground_hit_rate(&self) -> Option<f64> {
        hit_rate(self.ground_hits, self.ground_misses)
    }
}

impl PlanCacheStats {
    /// The stats as a JSON object (keys sorted), the form embedded in both
    /// `wfomc-report/v1` documents and the `wfomc-serve` stats endpoint.
    pub fn to_json(&self) -> String {
        let mut c = JsonObject::new();
        c.field_u64("cq_memo_hits", self.cq_memo_hits);
        c.field_u64("cq_memo_len", self.cq_memo_len as u64);
        c.field_u64("cq_memo_misses", self.cq_memo_misses);
        c.field_u64("fo2_bind_hits", self.fo2_bind_hits);
        c.field_u64("fo2_bind_misses", self.fo2_bind_misses);
        c.field_u64("fo2_cached_bindings", self.fo2_cached_bindings as u64);
        c.field_u64("ground_cached", self.ground_cached as u64);
        c.field_u64("ground_hits", self.ground_hits);
        c.field_u64("ground_misses", self.ground_misses);
        c.finish()
    }
}

fn hit_rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

/// Resource accounting of a governed solve: what was armed and what it cost.
///
/// Attached to [`SolverReport::limits`] by [`crate::Plan::count_with_limits`]
/// and friends whenever any limit or cancellation token was armed (`None` on
/// ungoverned counts and when [`wfomc_guard::ExecutionLimits::is_unlimited`]
/// held with no token).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LimitsReport {
    /// The armed wall-clock budget, if any.
    pub deadline: Option<std::time::Duration>,
    /// The armed work cap (abstract loop-iteration units), if any.
    pub work_cap: Option<u64>,
    /// Work units the solve recorded against the budget. For batch entry
    /// points this is the shared pool across all points, not a per-point
    /// figure.
    pub work_done: u64,
    /// Wall-clock time from arming the guard to the report.
    pub elapsed: std::time::Duration,
}

/// A solver result: the count and the method that produced it.
#[must_use = "a SolverReport carries the computed count"]
#[derive(Clone, Debug)]
pub struct SolverReport {
    /// The weighted model count (or probability, for the probability entry
    /// points).
    pub value: Weight,
    /// The method used.
    pub method: Method,
    /// The propositional backend, when the grounded fallback produced the
    /// result (`None` for lifted methods, which never touch a counter).
    pub backend: Option<WmcBackend>,
    /// Cost statistics of the FO² cell-sum engine, when [`Method::Fo2`]
    /// produced the result (`None` for every other method).
    pub fo2_stats: Option<Fo2Stats>,
    /// Cache accounting of the plan that served this count (`None` for
    /// reports produced outside a plan).
    pub cache: Option<PlanCacheStats>,
    /// True when a [`crate::plan::DegradePolicy`] exhausted the planned
    /// method's sub-budget and a cheaper fallback produced this value.
    pub degraded: bool,
    /// Resource accounting when the solve ran under armed
    /// [`wfomc_guard::ExecutionLimits`] or a cancellation token.
    pub limits: Option<LimitsReport>,
}

impl SolverReport {
    /// Machine-readable JSON under the stable `wfomc-report/v1` schema — the
    /// one report format shared by the `repro` harness, `repro trace`, and
    /// the `wfomc-serve` wire protocol (instead of three ad-hoc layouts).
    ///
    /// Layout: `schema` first (mirroring `wfomc-obs/v1`), then every other
    /// key in sorted order. Optional sections serialize as `null` when
    /// absent, so two reports of identical solves compare byte-for-byte.
    /// The count itself is a *string* (`"161"`, `"5/9"`): the exact
    /// rationals exceed any JSON number range.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("schema", "wfomc-report/v1");
        match self.backend {
            Some(backend) => obj.field_str("backend", &format!("{backend:?}")),
            None => obj.field_null("backend"),
        }
        match &self.cache {
            Some(cache) => obj.field_raw("cache", &cache.to_json()),
            None => obj.field_null("cache"),
        }
        obj.field_bool("degraded", self.degraded);
        match &self.fo2_stats {
            Some(stats) => {
                let mut s = JsonObject::new();
                s.field_u64("compositions_pruned", stats.compositions_pruned as u64);
                s.field_u64("compositions_summed", stats.compositions_summed as u64);
                s.field_u64("compositions_total", stats.compositions_total as u64);
                s.field_u64("introduced_predicates", stats.introduced_predicates as u64);
                s.field_u64("shannon_branches", stats.shannon_branches as u64);
                s.field_u64("total_valid_cells", stats.total_valid_cells as u64);
                s.field_u64(
                    "zero_weight_cells_pruned",
                    stats.zero_weight_cells_pruned as u64,
                );
                obj.field_raw("fo2_stats", &s.finish());
            }
            None => obj.field_null("fo2_stats"),
        }
        match &self.limits {
            Some(limits) => {
                let mut l = JsonObject::new();
                match limits.deadline {
                    Some(d) => l.field_f64("deadline_ms", d.as_secs_f64() * 1e3, 3),
                    None => l.field_null("deadline_ms"),
                }
                l.field_f64("elapsed_ms", limits.elapsed.as_secs_f64() * 1e3, 3);
                match limits.work_cap {
                    Some(cap) => l.field_u64("work_cap", cap),
                    None => l.field_null("work_cap"),
                }
                l.field_u64("work_done", limits.work_done);
                obj.field_raw("limits", &l.finish());
            }
            None => obj.field_null("limits"),
        }
        obj.field_str("method", &self.method.to_string());
        obj.field_str("value", &self.value.to_string());
        obj.finish()
    }
}

impl std::fmt::Display for SolverReport {
    /// `value [method]`, extended with the propositional backend for
    /// grounded answers, the composition prune ratio for FO² answers, and
    /// the plan's cache behavior (binding LRU, ground-plan LRU, CQ memo) —
    /// everything callers used to hand-format.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}", self.value, self.method)?;
        if let Some(backend) = self.backend {
            write!(f, ", backend {backend:?}")?;
        }
        if let Some(stats) = &self.fo2_stats {
            if stats.compositions_total > 0 {
                write!(
                    f,
                    ", pruned {}/{} compositions",
                    stats.compositions_pruned, stats.compositions_total
                )?;
            }
        }
        if self.degraded {
            write!(f, ", degraded")?;
        }
        if let Some(limits) = &self.limits {
            write!(f, ", limits")?;
            if let Some(deadline) = limits.deadline {
                write!(f, " deadline={:.0}ms", deadline.as_secs_f64() * 1e3)?;
            }
            match limits.work_cap {
                Some(cap) => write!(f, " work={}/{}", limits.work_done, cap)?,
                None => write!(f, " work={}", limits.work_done)?,
            }
            write!(f, " elapsed={:.1}ms", limits.elapsed.as_secs_f64() * 1e3)?;
        }
        if let Some(cache) = &self.cache {
            if cache.fo2_bind_hits + cache.fo2_bind_misses > 0 {
                write!(
                    f,
                    ", bind cache {}/{} hits ({} cached)",
                    cache.fo2_bind_hits,
                    cache.fo2_bind_hits + cache.fo2_bind_misses,
                    cache.fo2_cached_bindings
                )?;
            }
            if cache.ground_hits + cache.ground_misses > 0 {
                write!(
                    f,
                    ", ground cache {}/{} hits ({} cached)",
                    cache.ground_hits,
                    cache.ground_hits + cache.ground_misses,
                    cache.ground_cached
                )?;
            }
            if cache.cq_memo_hits + cache.cq_memo_misses > 0 {
                write!(
                    f,
                    ", cq memo {}/{} hits ({} shapes)",
                    cache.cq_memo_hits,
                    cache.cq_memo_hits + cache.cq_memo_misses,
                    cache.cq_memo_len
                )?;
            }
        }
        write!(f, "]")
    }
}

/// The dispatching solver.
#[derive(Clone, Copy, Debug)]
pub struct Solver {
    /// Whether to fall back to grounding when no lifted method applies.
    pub allow_ground_fallback: bool,
    /// Propositional backend for the grounded fallback.
    pub ground_backend: WmcBackend,
    /// Whether lifted methods are tried at all (disable to force grounding,
    /// used by the benchmark baselines).
    pub use_lifted: bool,
    /// Bound on the plan's per-domain-size grounding cache (lineage plus
    /// lazily compiled d-DNNF): `Some(k)` keeps the `k` most recently used
    /// domain sizes and evicts the rest, `None` (the default) never evicts.
    /// Long-lived processes sweeping many domain sizes should set a bound.
    pub ground_cache_capacity: Option<usize>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            allow_ground_fallback: true,
            ground_backend: WmcBackend::Dpll,
            use_lifted: true,
            ground_cache_capacity: None,
        }
    }
}

/// Chainable configuration for a [`Solver`] — the one construction surface
/// behind all the former ad-hoc constructors.
///
/// ```
/// use wfomc_core::Solver;
/// use wfomc_prop::WmcBackend;
///
/// let solver = Solver::builder()
///     .ground_backend(WmcBackend::Circuit)
///     .build();
/// assert_eq!(solver.ground_backend, WmcBackend::Circuit);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverBuilder {
    solver: Solver,
}

impl SolverBuilder {
    /// Starts from the default configuration (lifted methods first, grounded
    /// fallback enabled, DPLL backend).
    pub fn new() -> Self {
        SolverBuilder::default()
    }

    /// Whether lifted methods are tried at all (disable to force grounding,
    /// used by the benchmark baselines).
    pub fn lifted(mut self, enabled: bool) -> Self {
        self.solver.use_lifted = enabled;
        self
    }

    /// Whether to fall back to grounding when no lifted method applies
    /// (disable to make the solver error instead).
    pub fn ground_fallback(mut self, enabled: bool) -> Self {
        self.solver.allow_ground_fallback = enabled;
        self
    }

    /// The propositional backend for grounded evaluations (e.g.
    /// [`WmcBackend::Circuit`] for knowledge compilation).
    pub fn ground_backend(mut self, backend: WmcBackend) -> Self {
        self.solver.ground_backend = backend;
        self
    }

    /// Bounds the plan's per-domain-size grounding cache to the `capacity`
    /// most recently used domain sizes (LRU eviction). Unbounded by default.
    pub fn ground_cache_capacity(mut self, capacity: usize) -> Self {
        self.solver.ground_cache_capacity = Some(capacity);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> Solver {
        self.solver
    }
}

impl Solver {
    /// A solver with the default configuration (lifted methods first, grounded
    /// fallback enabled).
    pub fn new() -> Self {
        Solver::default()
    }

    /// Chainable configuration: `Solver::builder().lifted(false).build()`.
    pub fn builder() -> SolverBuilder {
        SolverBuilder::new()
    }

    /// A solver that only uses lifted methods (errors if none applies).
    ///
    /// Deprecated shim: prefer `Solver::builder().ground_fallback(false).build()`.
    pub fn lifted_only() -> Self {
        Solver::builder().ground_fallback(false).build()
    }

    /// A solver that always grounds (the baseline in the benchmarks).
    ///
    /// Deprecated shim: prefer `Solver::builder().lifted(false).build()`.
    pub fn ground_only() -> Self {
        Solver::builder().lifted(false).build()
    }

    /// A solver whose grounded fallback uses the chosen propositional
    /// backend (e.g. [`WmcBackend::Circuit`] for knowledge compilation).
    ///
    /// Deprecated shim: prefer `Solver::builder().ground_backend(backend).build()`.
    pub fn with_ground_backend(backend: WmcBackend) -> Self {
        Solver::builder().ground_backend(backend).build()
    }

    /// Symmetric WFOMC of a sentence over `vocabulary` and a domain of size
    /// `n` — a one-shot [`Solver::plan`] + [`crate::Plan::count`].
    ///
    /// Callers that evaluate the same sentence at several `(n, weights)`
    /// points should plan once themselves and reuse the [`crate::Plan`].
    pub fn wfomc(
        &self,
        sentence: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        weights: &Weights,
    ) -> Result<SolverReport, LiftError> {
        let problem = Problem::new(sentence.clone())
            .with_vocabulary(vocabulary.clone())
            .with_weights(weights.clone());
        match self.plan(&problem) {
            Ok(plan) => plan.count(n, weights),
            // Method selection is n-independent, but `n = 0` is not: the
            // empty domain has exactly one (empty) structure, so the lifted
            // dispatch answers *any* sentence there — preserve that for
            // lifted-only solvers on sentences no lifted method covers.
            Err(LiftError::PatternMismatch { .. }) if n == 0 && self.use_lifted => {
                let (value, stats) =
                    crate::fo2::wfomc_fo2_with_stats(sentence, vocabulary, 0, weights)?;
                Ok(SolverReport {
                    value,
                    method: Method::Fo2,
                    backend: None,
                    fo2_stats: Some(stats),
                    cache: None,
                    degraded: false,
                    limits: None,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// FOMC (all weights 1) over the sentence's own vocabulary.
    pub fn fomc(&self, sentence: &Formula, n: usize) -> Result<SolverReport, LiftError> {
        self.wfomc(sentence, &sentence.vocabulary(), n, &Weights::ones())
    }

    /// The probability of the sentence under the tuple-independent semantics:
    /// `Pr(Φ) = WFOMC(Φ) / WFOMC(true)`.
    pub fn probability(
        &self,
        sentence: &Formula,
        vocabulary: &Vocabulary,
        n: usize,
        weights: &Weights,
    ) -> Result<SolverReport, LiftError> {
        let full_voc = vocabulary.extended_with(&sentence.vocabulary());
        let report = self.wfomc(sentence, &full_voc, n, weights)?;
        let normalization = weights.wfomc_of_true(&full_voc, n);
        if normalization.is_zero() {
            return Err(LiftError::NoProbabilityNormalization {
                predicate: "<vocabulary>".to_string(),
            });
        }
        Ok(SolverReport {
            value: report.value / normalization,
            ..report
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::wfomc as ground_wfomc;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn dispatches_qs4_to_the_dynamic_program() {
        let solver = Solver::new();
        let report = solver.fomc(&catalog::qs4(), 2).unwrap();
        assert_eq!(report.method, Method::Qs4);
        assert_eq!(report.value, weight_int(14));
    }

    #[test]
    fn dispatches_fo2_sentences_to_cells() {
        let solver = Solver::new();
        for f in [
            catalog::forall_exists_edge(),
            catalog::table1_sentence(),
            catalog::spouse_constraint(),
            catalog::exists_unary(),
        ] {
            let report = solver.fomc(&f, 3).unwrap();
            assert_eq!(report.method, Method::Fo2, "wrong method for {f}");
            let grounded = ground_wfomc(&f, &f.vocabulary(), 3, &Weights::ones());
            assert_eq!(report.value, grounded, "wrong count for {f}");
        }
    }

    #[test]
    fn dispatches_gamma_acyclic_cqs() {
        let solver = Solver::new();
        // A 3-variable chain is not FO², so it must go to the CQ algorithm.
        let q = catalog::chain_query(3);
        let f = q.to_formula();
        let report = solver.fomc(&f, 2).unwrap();
        assert_eq!(report.method, Method::GammaAcyclicCq);
        assert_eq!(
            report.value,
            ground_wfomc(&f, &f.vocabulary(), 2, &Weights::ones())
        );
    }

    #[test]
    fn falls_back_to_ground_for_open_problems() {
        let solver = Solver::new();
        for (name, f) in catalog::table2_open_problems() {
            if f.vocabulary().num_ground_tuples(2) > 20 {
                continue;
            }
            let report = solver.fomc(&f, 2).unwrap();
            assert_eq!(
                report.method,
                Method::Ground,
                "{name} should not be liftable by the implemented methods"
            );
        }
    }

    #[test]
    fn lifted_only_solver_errors_on_hard_sentences() {
        let solver = Solver::lifted_only();
        let err = solver.fomc(&catalog::transitivity(), 2).unwrap_err();
        assert!(matches!(err, LiftError::PatternMismatch { .. }));
        // But still solves FO² sentences.
        assert!(solver.fomc(&catalog::table1_sentence(), 3).is_ok());
    }

    #[test]
    fn lifted_only_solver_still_answers_any_sentence_at_n_zero() {
        // The empty domain has exactly one structure, so even sentences
        // outside every lifted fragment are answered without grounding.
        let solver = Solver::lifted_only();
        let report = solver.fomc(&catalog::transitivity(), 0).unwrap();
        assert_eq!(report.value, weight_int(1));
        // An existential sentence is false on the empty domain.
        let exists = catalog::exists_unary();
        assert_eq!(solver.fomc(&exists, 0).unwrap().value, weight_int(0));
    }

    #[test]
    fn ground_only_solver_always_grounds() {
        let solver = Solver::ground_only();
        let report = solver.fomc(&catalog::table1_sentence(), 2).unwrap();
        assert_eq!(report.method, Method::Ground);
        assert_eq!(report.value, weight_int(161));
    }

    #[test]
    fn circuit_ground_backend_matches_dpll_and_is_reported() {
        let f = catalog::transitivity();
        let dpll = Solver::ground_only().fomc(&f, 2).unwrap();
        let circuit_solver = Solver {
            use_lifted: false,
            ..Solver::with_ground_backend(WmcBackend::Circuit)
        };
        let circuit = circuit_solver.fomc(&f, 2).unwrap();
        assert_eq!(dpll.value, circuit.value);
        assert_eq!(circuit.method, Method::Ground);
        assert_eq!(circuit.backend, Some(WmcBackend::Circuit));
        assert_eq!(dpll.backend, Some(WmcBackend::Dpll));
        // Lifted methods never report a propositional backend.
        let lifted = Solver::new().fomc(&catalog::table1_sentence(), 2).unwrap();
        assert_eq!(lifted.backend, None);
    }

    #[test]
    fn fo2_reports_engine_statistics() {
        let solver = Solver::new();
        let report = solver.fomc(&catalog::table1_sentence(), 4).unwrap();
        assert_eq!(report.method, Method::Fo2);
        let stats = report.fo2_stats.expect("FO² reports its stats");
        assert!(stats.total_valid_cells > 0);
        assert_eq!(
            stats.compositions_summed + stats.compositions_pruned,
            stats.compositions_total
        );
        // Other methods never carry FO² statistics.
        assert!(solver.fomc(&catalog::qs4(), 2).unwrap().fo2_stats.is_none());
        assert!(Solver::ground_only()
            .fomc(&catalog::table1_sentence(), 2)
            .unwrap()
            .fo2_stats
            .is_none());
    }

    #[test]
    fn builder_matches_the_legacy_constructor_shims() {
        let lifted = Solver::builder().ground_fallback(false).build();
        assert_eq!(
            lifted.allow_ground_fallback,
            Solver::lifted_only().allow_ground_fallback
        );
        let ground = Solver::builder().lifted(false).build();
        assert_eq!(ground.use_lifted, Solver::ground_only().use_lifted);
        let circuit = Solver::builder()
            .ground_backend(WmcBackend::Circuit)
            .build();
        assert_eq!(
            circuit.ground_backend,
            Solver::with_ground_backend(WmcBackend::Circuit).ground_backend
        );
        // Defaults are preserved by the builder.
        let default = Solver::builder().build();
        assert!(default.use_lifted && default.allow_ground_fallback);
        assert_eq!(default.ground_backend, WmcBackend::Dpll);
    }

    #[test]
    fn report_display_names_method_backend_and_prune_ratio() {
        let fo2 = Solver::new().fomc(&catalog::table1_sentence(), 4).unwrap();
        let text = fo2.to_string();
        assert!(text.contains("fo2-cells"), "{text}");
        assert!(text.contains("compositions"), "{text}");
        let ground = Solver::ground_only()
            .fomc(&catalog::table1_sentence(), 2)
            .unwrap();
        let text = ground.to_string();
        assert!(text.starts_with("161 ["), "{text}");
        assert!(text.contains("grounded-wmc"), "{text}");
        assert!(text.contains("Dpll"), "{text}");
    }

    #[test]
    fn report_to_json_is_stable_and_typed() {
        let report = Solver::new().fomc(&catalog::table1_sentence(), 4).unwrap();
        let json = report.to_json();
        assert!(
            json.starts_with("{\"schema\":\"wfomc-report/v1\""),
            "{json}"
        );
        assert!(json.contains("\"method\":\"fo2-cells\""), "{json}");
        assert!(json.contains("\"backend\":null"), "{json}");
        assert!(json.contains("\"degraded\":false"), "{json}");
        assert!(json.contains("\"compositions_total\""), "{json}");
        assert!(
            json.contains(&format!("\"value\":\"{}\"", report.value)),
            "{json}"
        );
        // Identical solves serialize byte-for-byte identically (limits are
        // None on ungoverned counts, so no wall-clock noise leaks in).
        let again = Solver::new().fomc(&catalog::table1_sentence(), 4).unwrap();
        assert_eq!(json, again.to_json());
        // Grounded reports carry the backend and a rational-valued string.
        let ground = Solver::ground_only()
            .fomc(&catalog::table1_sentence(), 2)
            .unwrap();
        let gjson = ground.to_json();
        assert!(gjson.contains("\"backend\":\"Dpll\""), "{gjson}");
        assert!(gjson.contains("\"fo2_stats\":null"), "{gjson}");
        assert!(gjson.contains("\"value\":\"161\""), "{gjson}");
    }

    #[test]
    fn probability_normalizes_by_wfomc_of_true() {
        let solver = Solver::new();
        let f = catalog::exists_unary();
        let voc = f.vocabulary();
        let mut w = Weights::ones();
        w.set_probability("S", weight_ratio(1, 3));
        let report = solver.probability(&f, &voc, 2, &w).unwrap();
        assert_eq!(report.value, weight_ratio(5, 9));
        assert_eq!(report.method, Method::Fo2);
    }

    #[test]
    fn extra_vocabulary_predicates_are_counted() {
        let solver = Solver::new();
        let f = catalog::qs4();
        let voc = Vocabulary::from_pairs([("S", 2), ("Unused", 1)]);
        let report = solver.wfomc(&f, &voc, 2, &Weights::ones()).unwrap();
        // 14 · 2² (for the unused unary predicate).
        assert_eq!(report.value, weight_int(56));
    }

    #[test]
    fn open_formula_is_rejected() {
        let solver = Solver::new();
        let f = wfomc_logic::builders::atom("R", &["x"]);
        assert!(matches!(solver.fomc(&f, 2), Err(LiftError::NotASentence)));
    }
}
