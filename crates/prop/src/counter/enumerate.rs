//! Brute-force weighted model counting by assignment enumeration.
//!
//! Exponential in the number of variables; used as ground truth for the DPLL
//! counter and by tests on tiny instances. Guarded by a hard cap so an
//! accidental call on a large instance fails fast instead of hanging.

use wfomc_logic::algebra::{Algebra, Exact, VarPairs};
use wfomc_logic::weights::Weight;

use crate::cnf::Cnf;
use crate::formula::PropFormula;
use crate::weights::VarWeights;

/// The largest variable count the enumerator accepts (2³⁰ assignments is
/// already far beyond what tests should do; the cap exists to fail fast).
pub const MAX_ENUMERATION_VARS: usize = 30;

/// Weighted model count of a CNF by enumerating all `2^num_vars` assignments.
///
/// # Panics
/// Panics if `cnf.num_vars > MAX_ENUMERATION_VARS`.
pub fn wmc_enumerate(cnf: &Cnf, weights: &VarWeights) -> Weight {
    wmc_enumerate_in(cnf, &Exact, weights)
}

/// [`wmc_enumerate`] in an arbitrary [`Algebra`].
///
/// # Panics
/// Panics if the universe exceeds [`MAX_ENUMERATION_VARS`].
pub fn wmc_enumerate_in<A: Algebra, W: VarPairs<A> + ?Sized>(
    cnf: &Cnf,
    algebra: &A,
    weights: &W,
) -> A::Elem {
    let n = cnf.num_vars.max(weights.table_len());
    assert!(
        n <= MAX_ENUMERATION_VARS,
        "refusing to enumerate 2^{n} assignments; use the DPLL backend"
    );
    let mut total = algebra.zero();
    let mut assignment = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (v, slot) in assignment.iter_mut().enumerate() {
            *slot = (bits >> v) & 1 == 1;
        }
        if cnf.evaluate(&assignment) {
            algebra.add_assign(
                &mut total,
                &assignment_weight(algebra, weights, &assignment),
            );
        }
    }
    total
}

/// Weighted model count of an arbitrary propositional formula by enumeration.
///
/// The variable universe is `weights.len()`, so variables not mentioned in the
/// formula still contribute `w + w̄` per variable.
///
/// # Panics
/// Panics if the universe exceeds [`MAX_ENUMERATION_VARS`] or the formula
/// mentions a variable outside the universe.
pub fn wmc_formula(formula: &PropFormula, weights: &VarWeights) -> Weight {
    assert!(
        formula.num_vars() <= weights.len(),
        "formula mentions variable {} but the universe has {} variables",
        formula.num_vars().saturating_sub(1),
        weights.len()
    );
    wmc_formula_in(formula, &Exact, weights)
}

/// [`wmc_formula`] in an arbitrary [`Algebra`]; the universe is
/// `max(formula.num_vars(), weights.table_len())`.
///
/// # Panics
/// Panics if the universe exceeds [`MAX_ENUMERATION_VARS`].
pub fn wmc_formula_in<A: Algebra, W: VarPairs<A> + ?Sized>(
    formula: &PropFormula,
    algebra: &A,
    weights: &W,
) -> A::Elem {
    let n = formula.num_vars().max(weights.table_len());
    assert!(
        n <= MAX_ENUMERATION_VARS,
        "refusing to enumerate 2^{n} assignments; use the DPLL backend"
    );
    let mut total = algebra.zero();
    let mut assignment = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (v, slot) in assignment.iter_mut().enumerate() {
            *slot = (bits >> v) & 1 == 1;
        }
        if formula.evaluate(&assignment) {
            algebra.add_assign(
                &mut total,
                &assignment_weight(algebra, weights, &assignment),
            );
        }
    }
    total
}

/// [`wmc_formula`] under a resource [`Guard`](wfomc_guard::Guard): the
/// identical enumeration, ticking once per assignment so deadlines, work
/// caps and cancellation interrupt mid-sweep.
///
/// # Panics
/// Panics if the universe exceeds [`MAX_ENUMERATION_VARS`].
pub fn wmc_formula_guarded(
    formula: &PropFormula,
    weights: &VarWeights,
    guard: &wfomc_guard::Guard,
) -> Result<Weight, wfomc_guard::Interrupt> {
    let algebra = &Exact;
    let n = formula.num_vars().max(weights.len());
    assert!(
        n <= MAX_ENUMERATION_VARS,
        "refusing to enumerate 2^{n} assignments; use the DPLL backend"
    );
    wfomc_guard::failpoint("prop.enumerate")?;
    let mut total = algebra.zero();
    let mut assignment = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        guard.tick("prop.enumerate", 1)?;
        for (v, slot) in assignment.iter_mut().enumerate() {
            *slot = (bits >> v) & 1 == 1;
        }
        if formula.evaluate(&assignment) {
            algebra.add_assign(
                &mut total,
                &assignment_weight(algebra, weights, &assignment),
            );
        }
    }
    Ok(total)
}

/// The weight of a complete assignment in the algebra (Eq. (3) of §2).
fn assignment_weight<A: Algebra, W: VarPairs<A> + ?Sized>(
    algebra: &A,
    weights: &W,
    assignment: &[bool],
) -> A::Elem {
    let mut w = algebra.one();
    for (v, &value) in assignment.iter().enumerate() {
        algebra.mul_assign(&mut w, &weights.var_weight(algebra, v, value));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;
    use wfomc_logic::weights::{weight_int, weight_ratio};

    #[test]
    fn counts_or_clause() {
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)]]);
        assert_eq!(wmc_enumerate(&cnf, &VarWeights::ones(2)), weight_int(3));
    }

    #[test]
    fn weighted_count_matches_hand_computation() {
        // F = x0 ∨ x1 with w = (2, 3), w̄ = (5, 7):
        // models TT: 2·3=6, TF: 2·7=14, FT: 5·3=15 → 35.
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)]]);
        let w = VarWeights::from_vecs(
            vec![weight_int(2), weight_int(3)],
            vec![weight_int(5), weight_int(7)],
        );
        assert_eq!(wmc_enumerate(&cnf, &w), weight_int(35));
    }

    #[test]
    fn probability_style_weights_sum_to_probability() {
        // p(x0)=1/2, p(x1)=1/3: Pr(x0 ∨ x1) = 1 − (1/2)(2/3) = 2/3.
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)]]);
        let w = VarWeights::from_vecs(
            vec![weight_ratio(1, 2), weight_ratio(1, 3)],
            vec![weight_ratio(1, 2), weight_ratio(2, 3)],
        );
        assert_eq!(wmc_enumerate(&cnf, &w), weight_ratio(2, 3));
    }

    #[test]
    fn formula_enumeration_includes_unmentioned_vars() {
        let f = PropFormula::var(0);
        // Universe of 3 vars: 1 · 2 · 2 = 4 models.
        assert_eq!(wmc_formula(&f, &VarWeights::ones(3)), weight_int(4));
    }

    #[test]
    fn empty_cnf_counts_everything() {
        let cnf = Cnf::trivial(3);
        assert_eq!(wmc_enumerate(&cnf, &VarWeights::ones(3)), weight_int(8));
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn too_many_vars_panics() {
        let cnf = Cnf::trivial(40);
        wmc_enumerate(&cnf, &VarWeights::ones(40));
    }
}
