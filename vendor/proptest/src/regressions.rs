//! Persistence of failing-case seeds, mirroring the real proptest's
//! `proptest-regressions/` files.
//!
//! Every `proptest!` case is generated from one `u64` seed. When a case
//! fails, its seed is appended (best-effort) to
//! `<CARGO_MANIFEST_DIR>/proptest-regressions/<test_name>.txt`; on the next
//! run the stored seeds are replayed *before* fresh random cases, so a
//! once-found counterexample keeps guarding the code after the fix — commit
//! the files to source control to share that protection across machines and
//! CI.
//!
//! File format: `#`-prefixed comment lines plus one `cc <seed>` line per
//! stored case (the `cc` prefix matches the real crate's files; the payload
//! here is the raw case seed rather than a strategy digest).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The regression file for one test:
/// `proptest-regressions/<module__path__test>.txt` under the crate being
/// tested. The module path is part of the key so that same-named `proptest!`
/// tests in different modules of one crate keep separate seed files (the
/// real crate disambiguates via the source file path).
pub fn regression_file(manifest_dir: &str, module_path: &str, test_name: &str) -> PathBuf {
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!(
            "{}__{test_name}.txt",
            module_path.replace("::", "__")
        ))
}

/// Reads the stored seeds (missing or unreadable files mean no seeds).
pub fn load_seeds(path: &Path) -> Vec<u64> {
    let Ok(content) = fs::read_to_string(path) else {
        return Vec::new();
    };
    content
        .lines()
        .filter_map(|line| line.trim().strip_prefix("cc ")?.trim().parse().ok())
        .collect()
}

/// Appends a failing seed, creating the directory and a comment header on
/// first use. Persistence is best-effort: an unwritable tree only degrades
/// to an eprintln (the test is failing anyway, and the seed is in its
/// output).
pub fn save_seed(path: &Path, seed: u64) {
    if load_seeds(path).contains(&seed) {
        return;
    }
    let result = (|| -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if file.metadata()?.len() == 0 {
            writeln!(
                file,
                "# Seeds for failure cases proptest has generated in the past."
            )?;
            writeln!(
                file,
                "# It is recommended to check this file in to source control so"
            )?;
            writeln!(
                file,
                "# that everyone who runs the test benefits from these saved cases."
            )?;
        }
        writeln!(file, "cc {seed}")
    })();
    if let Err(e) = result {
        eprintln!("proptest: could not persist regression seed {seed} to {path:?}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_file_is_module_qualified() {
        let path = regression_file("/crate", "my_crate::arith::tests", "roundtrip");
        assert_eq!(
            path,
            Path::new("/crate/proptest-regressions/my_crate__arith__tests__roundtrip.txt")
        );
    }

    #[test]
    fn seeds_round_trip_through_the_file() {
        let dir =
            std::env::temp_dir().join(format!("proptest-regressions-test-{}", std::process::id()));
        let path = dir.join("proptest-regressions").join("some_test.txt");
        assert!(load_seeds(&path).is_empty());
        save_seed(&path, 42);
        save_seed(&path, 7);
        save_seed(&path, 42); // duplicates are not stored twice
        assert_eq!(load_seeds(&path), vec![42, 7]);
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with('#'), "header comment present");
        assert_eq!(content.matches("cc ").count(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_lines_are_ignored() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-regressions-malformed-{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        fs::write(&path, "# comment\ncc 9\nnot a seed\ncc nonsense\n").unwrap();
        assert_eq!(load_seeds(&path), vec![9]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
