//! The `wfomc-snap/v1` on-disk snapshot store for prepared plan state.
//!
//! Replay from the JSONL registry log is correct but not cheap: every
//! logged sentence is re-planned from scratch (normal form, cell tables,
//! circuit compilation). The snapshot store persists each plan's prepared
//! state — the payload produced by `Plan::snap_encode` — under
//! `<dir>/<canonical-fnv-hash>.snap`, so a warm boot costs one read and one
//! validated decode per plan instead of a replan.
//!
//! # File format
//!
//! Every snapshot is a header followed by the raw payload, all integers
//! little-endian:
//!
//! | field          | type     | meaning                                   |
//! |----------------|----------|-------------------------------------------|
//! | magic          | 4 bytes  | `"WSNP"`                                  |
//! | format version | u16      | [`FORMAT_VERSION`]                        |
//! | crate version  | string   | `CARGO_PKG_VERSION` of the writer         |
//! | sentence key   | u64      | the registry's canonical-sentence FNV-1a  |
//! | payload length | u64      | byte length of the payload                |
//! | checksum       | u64      | FNV-1a over the payload bytes             |
//! | payload        | bytes    | `Plan::snap_encode` output                |
//!
//! # Invalidation
//!
//! [`SnapshotStore::load`] returns the payload only when *every* header
//! field checks out against this build and the expected key. Version skew
//! (format or crate), a key mismatch, truncation, a checksum failure, or
//! any read error short of "file not found" all count as *invalid*: the
//! snapshot is ignored and the caller replans. A stale or corrupt snapshot
//! therefore can never change an answer — it only costs the replan it was
//! supposed to save.
//!
//! Writes go through a temp file in the same directory followed by an
//! atomic rename, so a crash mid-write leaves either the old snapshot or a
//! `.tmp` orphan, never a torn `.snap`.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use wfomc_logic::snap::{fnv1a, Dec};
use wfomc_obs::metrics as obs;

/// Version of the snapshot container format. Bump on any layout change;
/// older files then fall back to replan silently.
pub const FORMAT_VERSION: u16 = 1;

/// The four magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"WSNP";

/// The writer's crate version, embedded in every header. Prepared-state
/// payloads are not guaranteed stable across releases, so any crate-version
/// difference invalidates a snapshot wholesale — replanning is always safe.
const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Always-on counters describing a store's lifetime (mirrored to the
/// `wfomc-obs` `snap.*` metrics when that feature is compiled in).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapStats {
    /// Snapshots loaded and validated successfully.
    pub hits: u64,
    /// Load attempts where no snapshot file existed.
    pub misses: u64,
    /// Load attempts rejected by validation (version skew, key mismatch,
    /// truncation, checksum failure, unreadable file).
    pub invalid: u64,
    /// Snapshots written.
    pub writes: u64,
}

/// A directory of versioned plan-state snapshots, one file per registered
/// plan, keyed by the registry's canonical-sentence hash.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    invalid: AtomicU64,
    writes: AtomicU64,
}

impl SnapshotStore {
    /// A store rooted at `dir` (created lazily on the first write).
    pub fn new(dir: impl Into<PathBuf>) -> SnapshotStore {
        SnapshotStore {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The conventional store for a registry log: a `snapshots/` directory
    /// next to the log file (`.wfomc/registry.jsonl` → `.wfomc/snapshots`).
    pub fn for_registry(registry_path: &Path) -> SnapshotStore {
        let parent = registry_path.parent().unwrap_or_else(|| Path::new("."));
        SnapshotStore::new(parent.join("snapshots"))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot path for a plan id (the registry's 16-hex-digit key).
    pub fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.snap"))
    }

    /// Lifetime hit/miss/invalid/write counts.
    pub fn stats(&self) -> SnapStats {
        SnapStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Atomically writes the snapshot for `id`: temp file in the store
    /// directory, then rename over the final path.
    pub fn write(&self, id: &str, key: u64, payload: &[u8]) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let final_path = self.path_for(id);
        let tmp_path = self.dir.join(format!("{id}.snap.tmp"));
        let mut bytes = Vec::with_capacity(40 + CRATE_VERSION.len() + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(CRATE_VERSION.len() as u64).to_le_bytes());
        bytes.extend_from_slice(CRATE_VERSION.as_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(&bytes)?;
            file.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        obs::SNAP_WRITES.inc();
        Ok(final_path)
    }

    /// Loads and validates the snapshot for `id`, returning the payload
    /// only when every header field matches this build and `key`. A missing
    /// file counts as a miss; anything else that fails counts as invalid.
    /// Both return `None` — the caller replans.
    pub fn load(&self, id: &str, key: u64) -> Option<Vec<u8>> {
        let bytes = match fs::read(self.path_for(id)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::SNAP_MISSES.inc();
                return None;
            }
            Err(_) => {
                self.invalid.fetch_add(1, Ordering::Relaxed);
                obs::SNAP_INVALID.inc();
                return None;
            }
        };
        match validate(&bytes, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::SNAP_HITS.inc();
                Some(payload)
            }
            Err(_) => {
                self.invalid.fetch_add(1, Ordering::Relaxed);
                obs::SNAP_INVALID.inc();
                None
            }
        }
    }

    /// Records an invalidation detected *after* a successful header-level
    /// [`load`](SnapshotStore::load) — e.g. the payload failed to decode or
    /// described a different registration than the log expects.
    pub fn note_invalid(&self) {
        self.invalid.fetch_add(1, Ordering::Relaxed);
        obs::SNAP_INVALID.inc();
    }

    /// Removes the snapshot for `id` if present (used when an invalid file
    /// would otherwise be revalidated on every boot).
    pub fn remove(&self, id: &str) -> io::Result<()> {
        match fs::remove_file(self.path_for(id)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Lists every `*.snap` file in the store with its validation status,
    /// sorted by id — the `wfomc-serve snapshots` subcommand. The expected
    /// key of each file is its own filename (ids *are* sentence keys), so
    /// inspection needs no registry.
    pub fn inspect(&self) -> io::Result<Vec<SnapshotInfo>> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("snap") {
                continue;
            }
            let id = match path.file_stem().and_then(|s| s.to_str()) {
                Some(stem) => stem.to_string(),
                None => continue,
            };
            let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let status = match u64::from_str_radix(&id, 16) {
                Err(_) => "invalid: filename is not a sentence key".to_string(),
                Ok(_) if id.len() != 16 => "invalid: filename is not a 16-digit key".to_string(),
                Ok(key) => match fs::read(&path) {
                    Err(e) => format!("invalid: unreadable ({e})"),
                    Ok(raw) => match validate(&raw, key) {
                        Ok(_) => "ok".to_string(),
                        Err(reason) => format!("invalid: {reason}"),
                    },
                },
            };
            out.push(SnapshotInfo { id, bytes, status });
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }
}

/// One row of [`SnapshotStore::inspect`].
#[derive(Clone, Debug)]
pub struct SnapshotInfo {
    /// The plan id (canonical-sentence key, 16 hex digits).
    pub id: String,
    /// File size in bytes.
    pub bytes: u64,
    /// `"ok"` or `"invalid: <reason>"`.
    pub status: String,
}

/// Checks every header field against this build and the expected key and
/// returns the payload, or the first reason the file must be rejected.
fn validate(bytes: &[u8], key: u64) -> Result<Vec<u8>, String> {
    let mut dec = Dec::new(bytes);
    let mut magic = [0u8; 4];
    for slot in &mut magic {
        *slot = dec.u8().map_err(|e| e.to_string())?;
    }
    if magic != MAGIC {
        return Err("bad magic".to_string());
    }
    let format_version = dec.u16().map_err(|e| e.to_string())?;
    if format_version != FORMAT_VERSION {
        return Err(format!(
            "format version skew (file {format_version}, build {FORMAT_VERSION})"
        ));
    }
    let crate_version = dec.str().map_err(|e| e.to_string())?;
    if crate_version != CRATE_VERSION {
        return Err(format!(
            "crate version skew (file {crate_version}, build {CRATE_VERSION})"
        ));
    }
    let file_key = dec.u64().map_err(|e| e.to_string())?;
    if file_key != key {
        return Err("sentence key mismatch".to_string());
    }
    let payload_len = dec.usize().map_err(|e| e.to_string())?;
    let checksum = dec.u64().map_err(|e| e.to_string())?;
    if dec.remaining() != payload_len {
        return Err(format!(
            "payload length mismatch (header {payload_len}, file {})",
            dec.remaining()
        ));
    }
    let payload = dec.rest();
    if fnv1a(payload) != checksum {
        return Err("checksum failure".to_string());
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    static TEMP_SEQ: TestCounter = TestCounter::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("wfomc-snap-{tag}-{}-{seq}", std::process::id()))
    }

    const ID: &str = "00000000deadbeef";
    const KEY: u64 = 0xdead_beef;

    #[test]
    fn write_then_load_round_trips() {
        let store = SnapshotStore::new(temp_dir("roundtrip"));
        let payload = b"prepared plan state".to_vec();
        store.write(ID, KEY, &payload).unwrap();
        assert_eq!(store.load(ID, KEY), Some(payload));
        let stats = store.stats();
        assert_eq!((stats.writes, stats.hits, stats.invalid), (1, 1, 0));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn missing_snapshot_is_a_miss_not_invalid() {
        let store = SnapshotStore::new(temp_dir("miss"));
        assert_eq!(store.load(ID, KEY), None);
        let stats = store.stats();
        assert_eq!((stats.misses, stats.invalid), (1, 0));
    }

    #[test]
    fn version_skew_truncation_and_corruption_invalidate() {
        let store = SnapshotStore::new(temp_dir("invalid"));
        let payload = b"payload".to_vec();
        let path = store.write(ID, KEY, &payload).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Bump the format version byte (offset 4, little-endian u16).
        let mut skewed = pristine.clone();
        skewed[4] = skewed[4].wrapping_add(1);
        std::fs::write(&path, &skewed).unwrap();
        assert_eq!(store.load(ID, KEY), None, "version skew");

        // Truncate mid-payload.
        std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        assert_eq!(store.load(ID, KEY), None, "truncation");

        // Flip a payload byte: checksum failure.
        let mut corrupt = pristine.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        std::fs::write(&path, &corrupt).unwrap();
        assert_eq!(store.load(ID, KEY), None, "checksum");

        // Wrong key: same bytes, different expectation.
        std::fs::write(&path, &pristine).unwrap();
        assert_eq!(store.load(ID, KEY + 1), None, "key mismatch");

        assert_eq!(store.stats().invalid, 4);
        // The pristine file still loads.
        assert_eq!(store.load(ID, KEY), Some(payload));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn inspect_reports_status_per_file() {
        let store = SnapshotStore::new(temp_dir("inspect"));
        assert!(store.inspect().unwrap().is_empty(), "no dir yet");
        let path = store.write(ID, KEY, b"payload").unwrap();
        std::fs::write(store.dir().join("0000000000000001.snap"), b"garbage").unwrap();
        let rows = store.inspect().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].status.starts_with("invalid:"), "{}", rows[0].status);
        assert_eq!(rows[1].id, ID);
        assert_eq!(rows[1].status, "ok");
        assert_eq!(rows[1].bytes, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn remove_is_idempotent() {
        let store = SnapshotStore::new(temp_dir("remove"));
        store.write(ID, KEY, b"payload").unwrap();
        store.remove(ID).unwrap();
        store.remove(ID).unwrap();
        assert_eq!(store.load(ID, KEY), None);
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
