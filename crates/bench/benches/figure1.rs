//! E2 — Figure 1: the conjunctive-query tractability landscape.
//!
//! γ-acyclic queries (chains, stars, the Table 1 dual) are counted by the
//! lifted Theorem 3.6 algorithm and scale polynomially in n; the typed cycle
//! C₃ (conjectured hard) only has the grounded baseline. The chain query is
//! also measured against the explicit Example 3.10 recurrence.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::core::cq::gamma_acyclic_wfomc;
use wfomc::ground::GroundSolver;
use wfomc::prelude::*;
use wfomc_bench::standard_weights;

fn bench_figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1");
    let weights = standard_weights();

    // Lifted γ-acyclic counting: chains and the Table 1 dual, growing n.
    for n in [4usize, 8, 16] {
        let chain = catalog::chain_query(3);
        group.bench_with_input(BenchmarkId::new("chain3/lifted", n), &n, |b, &n| {
            b.iter(|| gamma_acyclic_wfomc(&chain, n, &Weights::ones()).unwrap())
        });
        let chain_probs: Vec<Weight> = vec![weight_ratio(1, 3); 3];
        group.bench_with_input(BenchmarkId::new("chain3/recurrence", n), &n, |b, &n| {
            b.iter(|| chain_probability(&[n; 4], &chain_probs))
        });
        let dual = catalog::table1_dual_cq();
        group.bench_with_input(BenchmarkId::new("table1-dual/lifted", n), &n, |b, &n| {
            b.iter(|| gamma_acyclic_wfomc(&dual, n, &weights).unwrap())
        });
    }

    // Grounded baselines, exponential: only tiny n.
    for n in [2usize, 3] {
        let chain = catalog::chain_query(3).to_formula();
        group.bench_with_input(BenchmarkId::new("chain3/grounded", n), &n, |b, &n| {
            b.iter(|| GroundSolver::new().fomc(&chain, n))
        });
        let cycle = catalog::typed_cycle_cq(3).to_formula();
        group.bench_with_input(BenchmarkId::new("cycle3/grounded", n), &n, |b, &n| {
            b.iter(|| GroundSolver::new().fomc(&cycle, n))
        });
    }

    // Acyclicity classification itself (cheap, but part of the dispatch path).
    group.bench_function("classify-landscape", |b| {
        b.iter(|| {
            wfomc_bench::figure1_workload()
                .iter()
                .map(|(_, q)| query_hypergraph(q).classify())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_figure1
}
criterion_main!(benches);
