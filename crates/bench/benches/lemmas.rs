//! E7 — Lemmas 3.3–3.5 ablation: how much does each transformation cost, and
//! what does counting through the transformed sentence cost compared to
//! counting the original directly?

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use wfomc::core::normal::{
    remove_equality, remove_negation, skolemize, wfomc_via_equality_removal,
    wfomc_via_equality_removal_with_oracle,
};
use wfomc::ground::wfomc as ground_wfomc;
use wfomc::prelude::*;

fn bench_lemmas(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemmas");
    let weights = Weights::from_ints([("R", 2, 1), ("S", 1, 2)]);

    // Lemma 3.3: Skolemization (transformation cost + counting through it).
    let fe = catalog::forall_exists_edge();
    let fe_voc = fe.vocabulary();
    group.bench_function("skolemize/transform", |b| {
        b.iter(|| skolemize(&fe, &fe_voc, &weights))
    });
    let sk = skolemize(&fe, &fe_voc, &weights);
    group.bench_function("skolemize/count-original-grounded-n2", |b| {
        b.iter(|| ground_wfomc(&fe, &fe_voc, 2, &weights))
    });
    group.bench_function("skolemize/count-transformed-grounded-n2", |b| {
        b.iter(|| ground_wfomc(&sk.formula(), &sk.vocabulary, 2, &sk.weights))
    });

    // Lemma 3.4: negation removal on the spouse constraint.
    let spouse = catalog::spouse_constraint();
    group.bench_function("negation-removal/transform", |b| {
        b.iter(|| remove_negation(&spouse, &spouse.vocabulary(), &Weights::ones()).unwrap())
    });

    // Lemma 3.5: equality removal, transformation and the full interpolation
    // protocol with a grounded oracle at n = 2.
    let eq_sentence = forall(["x", "y"], or(vec![eq("x", "y"), atom("R", &["x", "y"])]));
    let eq_voc = eq_sentence.vocabulary();
    group.bench_function("equality-removal/transform", |b| {
        b.iter(|| remove_equality(&eq_sentence, &eq_voc))
    });
    group.bench_function("equality-removal/interpolation-n2", |b| {
        b.iter(|| {
            wfomc_via_equality_removal_with_oracle(&eq_sentence, &eq_voc, 2, &weights, ground_wfomc)
        })
    });
    // The planned variant analyzes the rewritten sentence once (FO² here)
    // and evaluates all n² + 1 points on that plan.
    group.bench_function("equality-removal/planned-n2", |b| {
        b.iter(|| wfomc_via_equality_removal(&eq_sentence, &eq_voc, 2, &weights))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_lemmas
}
criterion_main!(benches);
