//! The n-independent half of the FO² algorithm, prepared once and evaluated
//! many times.
//!
//! [`Fo2Prepared::prepare`] runs everything that does not depend on the domain
//! size or the weight function: Scott normalization, Shannon expansion of the
//! nullary predicates into branch matrices, valid-cell enumeration and the
//! satisfying cross-assignment sets of every pair table
//! ([`super::cells::PairStructure`]). [`Fo2Prepared::count`] then *binds* a
//! weight function (cheap: products and sums over the prepared structures,
//! cached for the most recent weights) and runs the prefix-sharing cell-sum
//! engine at the requested `n`.
//!
//! This is the prepared state behind [`crate::plan::Plan`] for
//! [`crate::solver::Method::Fo2`]; the one-shot
//! [`super::algorithm::wfomc_fo2`] is a thin prepare-then-count wrapper.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use num_traits::{One, Zero};

use wfomc_ground::evaluate::evaluate;
use wfomc_ground::structure::Structure;
use wfomc_guard::{Guard, Interrupt};
use wfomc_logic::algebra::{Algebra, AlgebraWeights, Exact};
use wfomc_logic::snap;
use wfomc_logic::syntax::Formula;
use wfomc_logic::vocabulary::{Predicate, Vocabulary};
use wfomc_logic::weights::{Weight, Weights};

use super::algorithm::Fo2Stats;
use super::cells::{
    bind_cell_weights_in, bind_pair_table_in, build_cell_shapes, build_pair_structure, Cell,
    CellSpace, PairStructure,
};
use super::cellsum::{
    cell_sum_elems, cell_sum_elems_guarded, cell_sum_weights, cell_sum_weights_gated, CellSumStats,
};
use super::normalize::fo2_normal_form;
use crate::error::LiftError;

/// Guard phase name for the n-independent pair-structure analysis.
const PREPARE_PHASE: &str = "fo2.prepare";

/// Capacity of the keyed weight-binding cache: large enough that an
/// alternating sweep over a handful of weight functions (the equality-removal
/// sweep, MLN learning loops) never thrashes, small enough that long-running
/// processes don't accumulate bindings without bound.
const BIND_CACHE_CAPACITY: usize = 8;

/// One Shannon branch with its weight-independent structure.
#[derive(Clone, Debug)]
struct PreparedBranch {
    /// Truth assignment to the nullary predicates (bit `i` is the `i`-th
    /// nullary predicate).
    mask: u64,
    /// Valid cells of the branch matrix (weights left at 1).
    shapes: Vec<Cell>,
    /// Satisfying cross assignments of every cell pair.
    pairs: PairStructure,
}

/// A weight-bound evaluation state: the prepared structures with one weight
/// function multiplied in, as elements of some algebra.
#[derive(Clone, Debug)]
struct Fo2BoundIn<E> {
    /// Branches whose nullary factor is non-zero, ready for the engine.
    branches: Vec<BoundBranchIn<E>>,
    /// `(predicate, w + w̄)` for the vocabulary predicates the cell
    /// decomposition does not cover.
    leftover: Vec<(Predicate, E)>,
}

#[derive(Clone, Debug)]
struct BoundBranchIn<E> {
    factor: E,
    /// Cell weights `u_c`, aligned with the branch's valid cells.
    u: Vec<E>,
    table: Vec<Vec<E>>,
}

/// The exact binding the keyed cache stores.
type Fo2Bound = Fo2BoundIn<Weight>;

/// The FO² sentence analysis, fully independent of the domain size and the
/// weight function. Prepare once, [`count`](Fo2Prepared::count) many times.
#[derive(Debug)]
pub struct Fo2Prepared {
    /// The original sentence (used for the `n = 0` special case).
    sentence: Formula,
    /// The cell space (unary/binary predicates of the normalized matrix).
    space: CellSpace,
    /// Nullary predicates removed by Shannon expansion.
    nullary: Vec<Predicate>,
    /// Predicates introduced by normalization (definition + Skolem).
    introduced: Vec<Predicate>,
    /// The fixed weight pairs of the introduced predicates.
    introduced_weights: Weights,
    /// Vocabulary predicates the cell decomposition does not account for;
    /// they contribute `(w + w̄)^{n^arity}`.
    leftover: Vec<Predicate>,
    /// The surviving (non-`Bottom`) Shannon branches.
    branches: Vec<PreparedBranch>,
    /// A small keyed LRU of exact weight bindings (most recent first), so
    /// alternating weight sweeps reuse their bindings instead of thrashing a
    /// single slot. Capacity [`BIND_CACHE_CAPACITY`].
    bound: Mutex<Vec<(Weights, Arc<Fo2Bound>)>>,
    /// Lifetime hits of the binding LRU. Always-on (one relaxed add next to
    /// a lock the cache takes anyway) so reports and the CI hit-rate gate
    /// see cache behavior without the `obs` feature.
    bind_hits: AtomicU64,
    /// Lifetime misses of the binding LRU (each one ran a full bind).
    bind_misses: AtomicU64,
}

impl Fo2Prepared {
    /// Runs the full n-independent analysis of an FO² sentence.
    ///
    /// Fails exactly when [`super::algorithm::wfomc_fo2`] would: the sentence
    /// is not FO², uses predicates of arity > 2, or contains constants.
    pub fn prepare(sentence: &Formula, vocabulary: &Vocabulary) -> Result<Fo2Prepared, LiftError> {
        Self::prepare_guarded(sentence, vocabulary, &Guard::unarmed()).map_err(|e| match e {
            crate::error::SolveError::Lift(err) => err,
            _ => unreachable!("an unarmed guard cannot interrupt"),
        })
    }

    /// [`prepare`](Self::prepare) under a resource [`Guard`]: the Shannon
    /// expansion ticks the guard once per branch (the loop is `2^#nullary`
    /// long), so deadlines, work caps and cancellation interrupt the
    /// n-independent analysis. The partial analysis is discarded.
    pub fn prepare_guarded(
        sentence: &Formula,
        vocabulary: &Vocabulary,
        guard: &Guard,
    ) -> Result<Fo2Prepared, crate::error::SolveError> {
        wfomc_guard::failpoint(PREPARE_PHASE)?;
        if !sentence.is_sentence() {
            return Err(LiftError::NotASentence.into());
        }
        // Normalization is weight-independent; the introduced predicates get
        // their fixed pairs ((1,1) for Def*, (1,−1) for Sk*) regardless of the
        // user weights, which we splice back in at bind time.
        let shape = fo2_normal_form(sentence, vocabulary, &Weights::ones())?;

        let mut counted: Vec<Predicate> = shape.matrix.vocabulary().predicates().to_vec();
        for p in &shape.introduced {
            if !counted.contains(p) {
                counted.push(p.clone());
            }
        }
        let space = CellSpace {
            unary: counted.iter().filter(|p| p.arity() == 1).cloned().collect(),
            binary: counted.iter().filter(|p| p.arity() == 2).cloned().collect(),
        };
        let nullary: Vec<Predicate> = counted.iter().filter(|p| p.arity() == 0).cloned().collect();

        let mut introduced_weights = Weights::ones();
        for p in &shape.introduced {
            let pair = shape.weights.pair_of(p);
            introduced_weights.set(p.name(), pair.pos, pair.neg);
        }

        let user_voc = vocabulary.extended_with(&sentence.vocabulary());
        let counted_names: BTreeSet<&str> = counted.iter().map(|p| p.name()).collect();
        let leftover: Vec<Predicate> = user_voc
            .iter()
            .filter(|p| !counted_names.contains(p.name()))
            .cloned()
            .collect();

        // Shannon expansion: one branch matrix per truth assignment to the
        // nullary predicates, each analyzed into cells and pair structures.
        // The pair-structure build (`2^{2b}` cross assignments per cell
        // pair) dominates and varies per branch, so many-branch expansions
        // fan the masks over a work-stealing pool; the common zero-nullary
        // case (one mask) stays on the caller's thread.
        let build_branch = |mask: u64| -> Result<Option<PreparedBranch>, crate::error::SolveError> {
            guard.tick(PREPARE_PHASE, 1)?;
            let branch_matrix = if nullary.is_empty() {
                shape.matrix.clone()
            } else {
                shape.matrix.map_bottom_up(&mut |node| match &node {
                    Formula::Atom(a) if a.args.is_empty() => {
                        match nullary.iter().position(|p| p == &a.predicate) {
                            Some(i) if mask >> i & 1 == 1 => Formula::Top,
                            Some(_) => Formula::Bottom,
                            None => node,
                        }
                    }
                    _ => node,
                })
            };
            let branch_matrix = wfomc_logic::transform::simplify(&branch_matrix);
            if branch_matrix == Formula::Bottom {
                return Ok(None);
            }
            let shapes = build_cell_shapes(&branch_matrix, &space)?;
            let pairs = build_pair_structure(&branch_matrix, &space, &shapes)?;
            // Front-load structurally constrained cells (many pairs with no
            // satisfying cross assignment) once, at prepare time. The counts
            // are weight-independent, so this is the one cell order every
            // binding shares — order-sensitive algebras keep it verbatim
            // (bit-reproducible across weight vectors and lanes) while the
            // exact engine may still refine it against the bound weights.
            let zeros = pairs.structural_zero_counts();
            let mut order: Vec<usize> = (0..shapes.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(zeros[i]));
            let shapes = order.iter().map(|&i| shapes[i].clone()).collect();
            let pairs = pairs.permute(&order);
            Ok(Some(PreparedBranch {
                mask,
                shapes,
                pairs,
            }))
        };
        let total_masks = 1u64 << nullary.len();
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let workers = if total_masks >= 4 {
            cores.min(total_masks as usize)
        } else {
            1
        };
        let mut branches = Vec::new();
        if workers <= 1 {
            for mask in 0..total_masks {
                if let Some(branch) = build_branch(mask)? {
                    branches.push(branch);
                }
            }
        } else {
            let pool = stealer::Pool::new(workers);
            pool.seed(0..total_masks);
            let mut slots: Vec<Option<Result<Option<PreparedBranch>, crate::error::SolveError>>> =
                (0..total_masks).map(|_| None).collect();
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|t| {
                        let mut queue = pool.worker(t);
                        let build_branch = &build_branch;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            while let Some(mask) = queue.pop() {
                                out.push((mask, build_branch(mask)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| {
                        h.join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .collect::<Vec<_>>()
            });
            wfomc_obs::metrics::CELLSUM_STEALS.add(pool.steals());
            for (mask, result) in results {
                slots[mask as usize] = Some(result);
            }
            // Surface the mask-order-first error so the parallel build fails
            // exactly like the serial loop regardless of the steal schedule.
            for slot in slots {
                if let Some(branch) = slot.expect("every mask analyzed")? {
                    branches.push(branch);
                }
            }
        }

        guard.check(PREPARE_PHASE)?;
        Ok(Fo2Prepared {
            sentence: sentence.clone(),
            space,
            nullary,
            introduced: shape.introduced,
            introduced_weights,
            leftover,
            branches,
            bound: Mutex::new(Vec::new()),
            bind_hits: AtomicU64::new(0),
            bind_misses: AtomicU64::new(0),
        })
    }

    /// Number of predicates introduced by normalization.
    pub fn introduced_predicates(&self) -> usize {
        self.introduced.len()
    }

    /// Number of Shannon branches prepared (the non-`Bottom` ones).
    pub fn branches_prepared(&self) -> usize {
        self.branches.len()
    }

    /// Total number of Shannon branches (`2^#nullary`).
    pub fn shannon_branches(&self) -> usize {
        1 << self.nullary.len()
    }

    /// Total number of valid cells over the prepared branches.
    pub fn total_cells(&self) -> usize {
        self.branches.iter().map(|b| b.shapes.len()).sum()
    }

    /// Total number of satisfying cross assignments captured by the prepared
    /// pair structures (what each weight binding sums over, grouped by
    /// signature).
    pub fn satisfying_pair_assignments(&self) -> usize {
        self.branches.iter().map(|b| b.pairs.num_satisfying()).sum()
    }

    /// Multiplies one weight function into the prepared structures in an
    /// arbitrary algebra. This is the cheap, per-count half: products and
    /// sums over the prepared signature multisets, no matrix evaluation.
    fn bind_in<A: Algebra>(&self, algebra: &A, weights: &AlgebraWeights<A>) -> Fo2BoundIn<A::Elem> {
        let mut effective = weights.clone();
        for p in &self.introduced {
            let pair = self.introduced_weights.pair_of(p);
            effective.set(
                p.name(),
                algebra.from_weight(&pair.pos),
                algebra.from_weight(&pair.neg),
            );
        }
        let nullary_pairs: Vec<_> = self
            .nullary
            .iter()
            .map(|p| effective.pair_of(algebra, p))
            .collect();
        let mut branches = Vec::new();
        for branch in &self.branches {
            let mut factor = algebra.one();
            for (i, (pos, neg)) in nullary_pairs.iter().enumerate() {
                algebra.mul_assign(
                    &mut factor,
                    if branch.mask >> i & 1 == 1 { pos } else { neg },
                );
            }
            if algebra.is_zero(&factor) {
                continue;
            }
            branches.push(BoundBranchIn {
                factor,
                u: bind_cell_weights_in(&branch.shapes, &self.space, algebra, &effective),
                table: bind_pair_table_in(&branch.pairs, &self.space, algebra, &effective),
            });
        }
        let leftover = self
            .leftover
            .iter()
            .map(|p| (p.clone(), effective.total(algebra, p.name())))
            .collect();
        Fo2BoundIn { branches, leftover }
    }

    /// The exact binding for a weight function, through the keyed LRU cache
    /// (capacity [`BIND_CACHE_CAPACITY`], most recently used first).
    fn bind(&self, weights: &Weights) -> Arc<Fo2Bound> {
        {
            let mut cache = self.bound.lock().expect("fo2 bind cache poisoned");
            if let Some(at) = cache.iter().position(|(cached, _)| cached == weights) {
                let hit = cache.remove(at);
                let bound = hit.1.clone();
                cache.insert(0, hit);
                self.bind_hits.fetch_add(1, Ordering::Relaxed);
                wfomc_obs::metrics::FO2_BIND_HITS.inc();
                return bound;
            }
        }
        self.bind_misses.fetch_add(1, Ordering::Relaxed);
        wfomc_obs::metrics::FO2_BIND_MISSES.inc();
        let bound = {
            let _span = wfomc_obs::span("fo2.bind");
            Arc::new(self.bind_in(&Exact, &AlgebraWeights::lift(&Exact, weights)))
        };
        let mut cache = self.bound.lock().expect("fo2 bind cache poisoned");
        // A concurrent binder may have inserted the same key while the lock
        // was released; keep the cache duplicate-free.
        if !cache.iter().any(|(cached, _)| cached == weights) {
            cache.insert(0, (weights.clone(), bound.clone()));
            cache.truncate(BIND_CACHE_CAPACITY);
        }
        wfomc_obs::metrics::FO2_BIND_CACHED.set(cache.len() as u64);
        bound
    }

    /// Number of weight bindings currently cached (bounded by the keyed
    /// LRU's capacity of 8).
    pub fn cached_bindings(&self) -> usize {
        self.bound.lock().expect("fo2 bind cache poisoned").len()
    }

    /// Lifetime `(hits, misses)` of the binding LRU. Always-on — no `obs`
    /// feature needed.
    pub fn bind_cache_stats(&self) -> (u64, u64) {
        (
            self.bind_hits.load(Ordering::Relaxed),
            self.bind_misses.load(Ordering::Relaxed),
        )
    }

    /// `WFOMC` of the prepared sentence at domain size `n` under `weights`,
    /// together with the engine's cost statistics. `allow_parallel` lets the
    /// Shannon branches / top-level cell splits fan out over scoped threads
    /// (callers that already parallelize across evaluation points pass
    /// `false`).
    pub fn count(&self, n: usize, weights: &Weights, allow_parallel: bool) -> (Weight, Fo2Stats) {
        // n = 0: there is exactly one (empty) structure; its weight is 1.
        if n == 0 {
            let value = if evaluate(&self.sentence, &Structure::empty(0)) {
                Weight::one()
            } else {
                Weight::zero()
            };
            return (value, Fo2Stats::default());
        }

        let bound = self.bind(weights);
        // The exact engine clears rational denominators before the DFS.
        self.sum_bound(&Exact, bound.as_ref(), n, allow_parallel, |b, parallel| {
            Ok(cell_sum_weights(&b.u, &b.table, n, parallel))
        })
        .expect("an ungated cell sum cannot interrupt")
    }

    /// [`count`](Self::count) under a resource [`Guard`]: the weight binding
    /// and every branch's cell sum are metered, so deadlines, work caps and
    /// cancellation interrupt mid-count. The binding LRU only ever stores
    /// *completed* bindings and the engine's accumulators are call-local, so
    /// an interrupted count leaves the prepared state fully reusable —
    /// retrying (with or without limits) gives the same answer as a fresh
    /// solve.
    pub fn count_guarded(
        &self,
        n: usize,
        weights: &Weights,
        allow_parallel: bool,
        guard: &Guard,
    ) -> Result<(Weight, Fo2Stats), Interrupt> {
        // n = 0: there is exactly one (empty) structure; its weight is 1.
        if n == 0 {
            let value = if evaluate(&self.sentence, &Structure::empty(0)) {
                Weight::one()
            } else {
                Weight::zero()
            };
            return Ok((value, Fo2Stats::default()));
        }

        wfomc_guard::failpoint("fo2.bind")?;
        guard.check("fo2.bind")?;
        let bound = self.bind(weights);
        self.sum_bound(&Exact, bound.as_ref(), n, allow_parallel, |b, parallel| {
            cell_sum_weights_gated(&b.u, &b.table, n, parallel, guard)
        })
    }

    /// [`count`](Self::count) in an arbitrary [`Algebra`]: binds the weight
    /// function in the ring and runs the same prefix-sharing engine.
    ///
    /// Exact-rational callers should prefer [`count`](Self::count): this
    /// generic path neither caches bindings (only the exact path keeps the
    /// keyed LRU — its `Weights` keys are comparable and its bindings
    /// dominate repeat workloads) nor clears rational denominators before
    /// the DFS (a `BigRational`-specific optimization the exact wrapper
    /// applies), so `count_in(&Exact, …)` returns identical values slower.
    pub fn count_in<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
        allow_parallel: bool,
    ) -> (A::Elem, Fo2Stats) {
        // n = 0: there is exactly one (empty) structure; its weight is 1.
        if n == 0 {
            let value = if evaluate(&self.sentence, &Structure::empty(0)) {
                algebra.one()
            } else {
                algebra.zero()
            };
            return (value, Fo2Stats::default());
        }

        let bound = self.bind_in(algebra, weights);
        self.sum_bound(algebra, &bound, n, allow_parallel, |b, parallel| {
            Ok(cell_sum_elems(algebra, &b.u, &b.table, n, parallel))
        })
        .expect("an ungated cell sum cannot interrupt")
    }

    /// [`count_in`](Self::count_in) under a resource [`Guard`] — the
    /// algebra-generic counterpart of [`count_guarded`](Self::count_guarded),
    /// used by the lane-batched evaluation path so governed batches stay
    /// interruptible mid-traversal.
    pub fn count_in_guarded<A: Algebra>(
        &self,
        n: usize,
        algebra: &A,
        weights: &AlgebraWeights<A>,
        allow_parallel: bool,
        guard: &Guard,
    ) -> Result<(A::Elem, Fo2Stats), Interrupt> {
        // n = 0: there is exactly one (empty) structure; its weight is 1.
        if n == 0 {
            let value = if evaluate(&self.sentence, &Structure::empty(0)) {
                algebra.one()
            } else {
                algebra.zero()
            };
            return Ok((value, Fo2Stats::default()));
        }

        wfomc_guard::failpoint("fo2.bind")?;
        guard.check("fo2.bind")?;
        let bound = self.bind_in(algebra, weights);
        self.sum_bound(algebra, &bound, n, allow_parallel, |b, parallel| {
            cell_sum_elems_guarded(algebra, &b.u, &b.table, n, parallel, guard)
        })
    }

    /// Shared evaluation tail of [`count`](Self::count) and
    /// [`count_in`](Self::count_in): leftover-predicate factors, branch
    /// evaluation (parallel when allowed), stats accumulation.
    fn sum_bound<A: Algebra>(
        &self,
        algebra: &A,
        bound: &Fo2BoundIn<A::Elem>,
        n: usize,
        allow_parallel: bool,
        eval: impl Fn(&BoundBranchIn<A::Elem>, bool) -> Result<(A::Elem, CellSumStats), Interrupt>
            + Sync,
    ) -> Result<(A::Elem, Fo2Stats), Interrupt> {
        let _span = wfomc_obs::span("fo2.cellsum");
        let mut stats = Fo2Stats {
            introduced_predicates: self.introduced.len(),
            shannon_branches: self.shannon_branches(),
            ..Fo2Stats::default()
        };
        let mut leftover = algebra.one();
        for (p, total) in &bound.leftover {
            algebra.mul_assign(&mut leftover, &algebra.pow(total, p.num_ground_tuples(n)));
        }

        let mut total = algebra.zero();
        for (branch, result) in
            bound
                .branches
                .iter()
                .zip(evaluate_bound(&bound.branches, n, allow_parallel, &eval))
        {
            let (value, branch_stats) = result?;
            stats.absorb_cell_sum(&branch_stats);
            algebra.add_assign(&mut total, &algebra.mul(&branch.factor, &value));
        }
        wfomc_obs::metrics::CELLSUM_SUMMED.add(stats.compositions_summed as u64);
        wfomc_obs::metrics::CELLSUM_PRUNED.add(stats.compositions_pruned as u64);
        Ok((algebra.mul(&leftover, &total), stats))
    }
}

// ---- Snapshot codec (wfomc-snap/v1) ---------------------------------------
//
// Everything prepare computes is serialized verbatim — normal-form cell
// space, introduced predicates with their fixed weights, Shannon branches
// with valid-cell shapes and pair-structure signature multisets (in their
// structural-zero-sorted order, so decode skips the reordering pass too).
// The binding LRU is deliberately *not* persisted: bindings are cheap,
// weight-dependent, and the cache starts cold like a fresh prepare.

fn snap_encode_cell(enc: &mut snap::Enc, cell: &Cell) {
    enc.usize(cell.unary.len());
    for &b in &cell.unary {
        enc.bool(b);
    }
    enc.usize(cell.reflexive.len());
    for &b in &cell.reflexive {
        enc.bool(b);
    }
    snap::encode_weight(enc, &cell.weight);
}

fn snap_decode_cell(dec: &mut snap::Dec<'_>) -> snap::SnapResult<Cell> {
    let n = dec.len()?;
    let mut unary = Vec::with_capacity(n);
    for _ in 0..n {
        unary.push(dec.bool()?);
    }
    let n = dec.len()?;
    let mut reflexive = Vec::with_capacity(n);
    for _ in 0..n {
        reflexive.push(dec.bool()?);
    }
    let weight = snap::decode_weight(dec)?;
    Ok(Cell {
        unary,
        reflexive,
        weight,
    })
}

fn snap_encode_predicates(enc: &mut snap::Enc, predicates: &[Predicate]) {
    enc.usize(predicates.len());
    for p in predicates {
        snap::encode_predicate(enc, p);
    }
}

fn snap_decode_predicates(dec: &mut snap::Dec<'_>) -> snap::SnapResult<Vec<Predicate>> {
    let n = dec.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(snap::decode_predicate(dec)?);
    }
    Ok(out)
}

fn snap_encode_pairs(enc: &mut snap::Enc, pairs: &PairStructure) {
    let rows = pairs.sat_rows();
    enc.usize(rows.len());
    for row in rows {
        enc.usize(row.len());
        for multiset in row {
            enc.usize(multiset.len());
            for (signature, count) in multiset {
                enc.bytes(signature);
                enc.u64(*count);
            }
        }
    }
}

fn snap_decode_pairs(dec: &mut snap::Dec<'_>) -> snap::SnapResult<PairStructure> {
    let k = dec.len()?;
    let mut rows = Vec::with_capacity(k);
    for _ in 0..k {
        let len = dec.len()?;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            let sigs = dec.len()?;
            let mut multiset = Vec::with_capacity(sigs);
            for _ in 0..sigs {
                let signature = dec.bytes()?.to_vec();
                let count = dec.u64()?;
                multiset.push((signature, count));
            }
            row.push(multiset);
        }
        rows.push(row);
    }
    PairStructure::from_rows(rows)
        .ok_or_else(|| snap::SnapError::new("pair structure is not triangular"))
}

impl Fo2Prepared {
    /// Serializes the full prepared state into the encoder.
    pub(crate) fn snap_encode(&self, enc: &mut snap::Enc) {
        snap::encode_formula(enc, &self.sentence);
        snap_encode_predicates(enc, &self.space.unary);
        snap_encode_predicates(enc, &self.space.binary);
        snap_encode_predicates(enc, &self.nullary);
        snap_encode_predicates(enc, &self.introduced);
        snap::encode_weights(enc, &self.introduced_weights);
        snap_encode_predicates(enc, &self.leftover);
        enc.usize(self.branches.len());
        for branch in &self.branches {
            enc.u64(branch.mask);
            enc.usize(branch.shapes.len());
            for shape in &branch.shapes {
                snap_encode_cell(enc, shape);
            }
            snap_encode_pairs(enc, &branch.pairs);
        }
    }

    /// Rebuilds prepared state written by [`snap_encode`](Self::snap_encode).
    /// The binding LRU starts empty and the hit counters at zero, exactly
    /// like a fresh [`prepare`](Self::prepare).
    pub(crate) fn snap_decode(dec: &mut snap::Dec<'_>) -> snap::SnapResult<Fo2Prepared> {
        let sentence = snap::decode_formula(dec)?;
        let space = CellSpace {
            unary: snap_decode_predicates(dec)?,
            binary: snap_decode_predicates(dec)?,
        };
        let nullary = snap_decode_predicates(dec)?;
        let introduced = snap_decode_predicates(dec)?;
        let introduced_weights = snap::decode_weights(dec)?;
        let leftover = snap_decode_predicates(dec)?;
        let num_branches = dec.len()?;
        let mut branches = Vec::with_capacity(num_branches);
        for _ in 0..num_branches {
            let mask = dec.u64()?;
            let num_shapes = dec.len()?;
            let mut shapes = Vec::with_capacity(num_shapes);
            for _ in 0..num_shapes {
                let shape = snap_decode_cell(dec)?;
                if shape.unary.len() != space.unary.len()
                    || shape.reflexive.len() != space.binary.len()
                {
                    return Err(snap::SnapError::new("cell shape does not match cell space"));
                }
                shapes.push(shape);
            }
            let pairs = snap_decode_pairs(dec)?;
            if pairs.sat_rows().len() != shapes.len() {
                return Err(snap::SnapError::new("pair structure does not match cells"));
            }
            branches.push(PreparedBranch {
                mask,
                shapes,
                pairs,
            });
        }
        Ok(Fo2Prepared {
            sentence,
            space,
            nullary,
            introduced,
            introduced_weights,
            leftover,
            branches,
            bound: Mutex::new(Vec::new()),
            bind_hits: AtomicU64::new(0),
            bind_misses: AtomicU64::new(0),
        })
    }
}

/// Evaluates the bound Shannon branches, fanning them over scoped threads
/// when allowed and worthwhile. Results are aligned with the input order.
fn evaluate_bound<E: Clone + Send + Sync, S: Send>(
    branches: &[BoundBranchIn<E>],
    n: usize,
    allow_parallel: bool,
    eval: &(impl Fn(&BoundBranchIn<E>, bool) -> S + Sync),
) -> Vec<S> {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let workers = if allow_parallel && branches.len() > 1 && n >= 8 {
        cores.min(branches.len())
    } else {
        1
    };
    if workers <= 1 {
        return branches.iter().map(|b| eval(b, allow_parallel)).collect();
    }
    // With fewer branch workers than cores, let each branch's engine split
    // its top level too (its own composition-count threshold still applies).
    // Branch costs are wildly uneven (a hard-constraint branch prunes to
    // nothing, an unconstrained one sums every composition), so the branches
    // go through a work-stealing pool instead of a fixed round-robin split.
    // A worker panic is resumed here on the joining thread, where the plan
    // layer's per-point containment turns it into
    // `SolveError::WorkerPanicked`.
    let parallel_within = workers < cores;
    let pool = stealer::Pool::new(workers);
    pool.seed(0..branches.len());
    let out = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let mut queue = pool.worker(t);
                scope.spawn(move || {
                    let mut done = Vec::new();
                    while let Some(i) = queue.pop() {
                        done.push((i, eval(&branches[i], parallel_within)));
                    }
                    done
                })
            })
            .collect();
        let mut out: Vec<Option<S>> = branches.iter().map(|_| None).collect();
        for handle in handles {
            let done = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (i, result) in done {
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every branch evaluated"))
            .collect()
    });
    wfomc_obs::metrics::CELLSUM_STEALS.add(pool.steals());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::wfomc as ground_wfomc;
    use wfomc_logic::catalog;

    #[test]
    fn prepared_count_matches_one_shot_across_n_and_weights() {
        for sentence in [
            catalog::table1_sentence(),
            catalog::forall_exists_edge(),
            catalog::exists_unary(),
            catalog::smokers_constraint(),
        ] {
            let voc = sentence.vocabulary();
            let prepared = Fo2Prepared::prepare(&sentence, &voc).expect("FO² applies");
            for weights in [
                Weights::ones(),
                Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, 1)]),
                Weights::from_ints([("R", 0, 1), ("S", -1, 2), ("T", 2, 2)]),
            ] {
                for n in 0..=4 {
                    let (value, stats) = prepared.count(n, &weights, true);
                    let (one_shot, one_shot_stats) =
                        super::super::wfomc_fo2_with_stats(&sentence, &voc, n, &weights)
                            .expect("FO² applies");
                    assert_eq!(value, one_shot, "{sentence} at n={n}");
                    assert_eq!(stats, one_shot_stats, "{sentence} stats at n={n}");
                    assert_eq!(
                        value,
                        ground_wfomc(&sentence, &voc, n, &weights),
                        "{sentence} vs ground at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn snapshot_codec_round_trips_prepared_state() {
        for sentence in [
            catalog::table1_sentence(),
            catalog::smokers_constraint(),
            catalog::exists_unary(),
        ] {
            let voc = sentence.vocabulary();
            let prepared = Fo2Prepared::prepare(&sentence, &voc).expect("FO² applies");
            let mut enc = snap::Enc::new();
            prepared.snap_encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = snap::Dec::new(&bytes);
            let decoded = Fo2Prepared::snap_decode(&mut dec).expect("round trip");
            dec.finish().expect("payload fully consumed");
            let weights = Weights::from_ints([("R", 2, 1), ("S", 0, -3), ("T", 1, 3)]);
            for n in 0..=4 {
                let (value, stats) = prepared.count(n, &weights, true);
                let (decoded_value, decoded_stats) = decoded.count(n, &weights, true);
                assert_eq!(value, decoded_value, "{sentence} at n={n}");
                assert_eq!(stats, decoded_stats, "{sentence} stats at n={n}");
            }
        }
    }

    #[test]
    fn binding_is_cached_per_weight_function() {
        let sentence = catalog::table1_sentence();
        let voc = sentence.vocabulary();
        let prepared = Fo2Prepared::prepare(&sentence, &voc).unwrap();
        let w = Weights::from_ints([("R", 2, 1)]);
        let first = prepared.bind(&w);
        let second = prepared.bind(&w);
        assert!(Arc::ptr_eq(&first, &second), "same weights reuse binding");
        let other = prepared.bind(&Weights::ones());
        assert!(!Arc::ptr_eq(&first, &other), "new weights rebind");
    }

    #[test]
    fn binding_cache_is_a_keyed_lru() {
        // An alternating sweep over several weight functions must not thrash:
        // every function in a working set of ≤ capacity keeps its binding.
        let sentence = catalog::table1_sentence();
        let voc = sentence.vocabulary();
        let prepared = Fo2Prepared::prepare(&sentence, &voc).unwrap();
        let sweep: Vec<Weights> = (0..4)
            .map(|i| Weights::from_ints([("R", i + 2, 1)]))
            .collect();
        let firsts: Vec<_> = sweep.iter().map(|w| prepared.bind(w)).collect();
        // Second pass, alternating order: all hits.
        for (w, first) in sweep.iter().zip(&firsts).rev() {
            assert!(
                Arc::ptr_eq(first, &prepared.bind(w)),
                "alternating sweep must hit the LRU"
            );
        }
        assert_eq!(prepared.cached_bindings(), sweep.len());
        // Overflowing the capacity evicts the least recently used binding
        // (the last re-bound entry of the sweep is the most recent).
        for i in 0..super::BIND_CACHE_CAPACITY {
            let _ = prepared.bind(&Weights::from_ints([("T", i as i64 + 2, 1)]));
        }
        assert_eq!(prepared.cached_bindings(), super::BIND_CACHE_CAPACITY);
        assert!(
            !Arc::ptr_eq(&firsts[3], &prepared.bind(&sweep[3])),
            "evicted weights rebind"
        );
    }

    #[test]
    fn count_in_exact_matches_count_and_other_algebras_track_it() {
        use wfomc_logic::algebra::{AlgebraWeights, Exact, LogF64, Poly};

        let sentence = catalog::smokers_constraint();
        let voc = sentence.vocabulary();
        let prepared = Fo2Prepared::prepare(&sentence, &voc).unwrap();
        let weights = Weights::from_ints([("Smokes", 3, 1), ("Friends", 1, 2)]);
        for n in 0..=5 {
            let (exact, exact_stats) = prepared.count(n, &weights, false);
            // Exact algebra through the generic path: identical values.
            let (generic, generic_stats) =
                prepared.count_in(n, &Exact, &AlgebraWeights::lift(&Exact, &weights), false);
            assert_eq!(exact, generic, "n = {n}");
            assert_eq!(exact_stats, generic_stats, "n = {n}");
            // LogF64 tracks the exact value within floating tolerance.
            let (log, _) =
                prepared.count_in(n, &LogF64, &AlgebraWeights::lift(&LogF64, &weights), false);
            let expected = LogF64.from_weight(&exact);
            assert_eq!(log.signum(), expected.signum(), "n = {n}");
            if !exact.is_zero() {
                assert!(
                    (log.ln_abs() - expected.ln_abs()).abs() < 1e-9,
                    "n = {n}: {log} vs {expected}"
                );
            }
            // Poly with constant weights is a degree-0 polynomial.
            let (poly, _) =
                prepared.count_in(n, &Poly, &AlgebraWeights::lift(&Poly, &weights), false);
            assert_eq!(poly.coeff(0), exact, "n = {n}");
        }
    }

    #[test]
    fn prepare_rejects_non_fo2_sentences() {
        let f = catalog::transitivity();
        assert!(matches!(
            Fo2Prepared::prepare(&f, &f.vocabulary()),
            Err(LiftError::TooManyVariables { .. })
        ));
    }

    #[test]
    fn prepared_summary_counters() {
        let f = catalog::forall_exists_edge();
        let prepared = Fo2Prepared::prepare(&f, &f.vocabulary()).unwrap();
        assert_eq!(prepared.introduced_predicates(), 1);
        assert_eq!(prepared.shannon_branches(), 1);
        assert_eq!(prepared.branches_prepared(), 1);
        assert!(prepared.total_cells() >= 3);
    }
}
