//! Lemma 3.5 — removing the equality predicate.
//!
//! Replace every equality atom `x = y` by a fresh binary relation `E(x,y)` and
//! conjoin the hard constraint `∀x E(x,x)`. With weights `w(E) = z`,
//! `w̄(E) = 1`, the weighted model count of the rewritten sentence Φ′ is a
//! polynomial `f(z)` of degree at most `n²` whose monomials all have degree
//! ≥ n (the diagonal is forced). Worlds where `|E| = n` are exactly those
//! interpreting `E` as true equality, so the coefficient of `zⁿ` equals
//! `WFOMC(Φ, n, w, w̄)`.
//!
//! Two ways to get at that coefficient:
//!
//! * **Symbolically** (the default, [`wfomc_via_equality_removal`]): give
//!   `E` the indeterminate [`wfomc_logic::poly::Polynomial::x`] as its
//!   weight and evaluate the
//!   rewritten sentence **once** in the [`Poly`] algebra — every lifted (or
//!   grounded) algorithm then computes `f` itself, coefficient-exactly, in
//!   a single run.
//! * **By interpolation** (the literal Lemma 3.5 protocol,
//!   [`wfomc_via_equality_removal_interpolated`] and the oracle/compiled
//!   variants): evaluate `f` at `n² + 1` rational points and Lagrange-
//!   interpolate. Kept as the differential oracle for the symbolic path.

use num_traits::{One, Zero};

use wfomc_ground::CompiledWfomc;
use wfomc_logic::algebra::Poly;
use wfomc_logic::poly::lift_with_indeterminate;
use wfomc_logic::syntax::Formula;
use wfomc_logic::term::Term;
use wfomc_logic::vocabulary::{Predicate, Vocabulary};
use wfomc_logic::weights::{weight_int, Weight, Weights};

use crate::plan::Problem;
use crate::solver::Solver;

/// The equality-free rewriting of a sentence.
#[derive(Clone, Debug)]
pub struct EqualityFree {
    /// `Φ_E ∧ ∀x E(x,x)` — the rewritten sentence.
    pub formula: Formula,
    /// The vocabulary extended with the fresh predicate `E`.
    pub vocabulary: Vocabulary,
    /// The fresh predicate standing in for equality.
    pub equality_predicate: Predicate,
}

/// Rewrites a sentence so it no longer uses the built-in equality predicate.
pub fn remove_equality(formula: &Formula, vocabulary: &Vocabulary) -> EqualityFree {
    let mut vocabulary = vocabulary.extended_with(&formula.vocabulary());
    let e = vocabulary.add_fresh("Eq", 2);
    let rewritten = formula.map_bottom_up(&mut |node| match node {
        Formula::Equals(a, b) => Formula::atom(e.clone(), vec![a, b]),
        other => other,
    });
    // The reflexivity axiom is a closed conjunct, so its bound variable can
    // reuse any name the sentence already employs — keeping an FO² input
    // inside FO² so the rewritten sentence stays liftable.
    let x = formula
        .all_variables()
        .into_iter()
        .next()
        .unwrap_or_else(|| wfomc_logic::term::Variable::new("eq_x"));
    let reflexivity = Formula::forall(
        x.clone(),
        Formula::atom(e.clone(), vec![Term::Var(x.clone()), Term::Var(x)]),
    );
    EqualityFree {
        formula: Formula::and(rewritten, reflexivity),
        vocabulary,
        equality_predicate: e,
    }
}

/// Computes `WFOMC(Φ, n, w, w̄)` for a sentence Φ *with* equality by **one**
/// lifted evaluation in the [`Poly`] algebra: the fresh predicate `E` gets
/// the indeterminate `z` as its weight (`w(E) = z`, `w̄(E) = 1`), the
/// plan-then-execute solver computes the Eq-weight polynomial `f(z)`
/// symbolically, and the answer is the coefficient of `zⁿ`.
///
/// When the rewritten sentence is FO² this is one run of the cell-sum engine
/// over polynomial-valued cells; when it is not, the plan's grounded path
/// compiles one d-DNNF circuit and evaluates it once over polynomial
/// weights. Either way there are no interpolation points on this path — the
/// `n² + 1`-point Lagrange protocol survives as
/// [`wfomc_via_equality_removal_interpolated`], the differential oracle.
pub fn wfomc_via_equality_removal(
    formula: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weights: &Weights,
) -> Weight {
    let rewritten = remove_equality(formula, vocabulary);
    let problem = Problem::new(rewritten.formula.clone())
        .with_vocabulary(rewritten.vocabulary.clone())
        .with_weights(weights.clone());
    let plan = Solver::builder()
        .ground_backend(wfomc_prop::WmcBackend::Circuit)
        .build()
        .plan(&problem)
        .expect("the rewritten sentence is closed and the grounded fallback always applies");

    let poly_weights = lift_with_indeterminate(weights, rewritten.equality_predicate.name());
    let f = plan
        .count_in(n, &Poly, &poly_weights)
        .expect("plan evaluation cannot fail after planning succeeded");
    f.coeff(n)
}

/// Computes `WFOMC(Φ, n, w, w̄)` through the literal Lemma 3.5 protocol: the
/// rewritten sentence is analyzed **once** into a [`crate::Plan`] and the
/// `n² + 1` interpolation points `w(E) = 0, 1, …, n²` are evaluated as a
/// batch on that plan, then Lagrange-interpolated.
///
/// This was the default path before the [`Poly`] algebra existed; it is kept
/// as the differential-testing oracle for [`wfomc_via_equality_removal`]
/// (and because it is the protocol the paper states).
pub fn wfomc_via_equality_removal_interpolated(
    formula: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weights: &Weights,
) -> Weight {
    let rewritten = remove_equality(formula, vocabulary);
    let problem = Problem::new(rewritten.formula.clone())
        .with_vocabulary(rewritten.vocabulary.clone())
        .with_weights(weights.clone());
    // The circuit backend makes the grounded path compile-once too: plans
    // cache one d-DNNF per domain size, so a non-FO² rewrite costs one
    // compilation plus n² + 1 linear evaluations.
    let plan = Solver::builder()
        .ground_backend(wfomc_prop::WmcBackend::Circuit)
        .build()
        .plan(&problem)
        .expect("the rewritten sentence is closed and the grounded fallback always applies");

    let degree = n * n;
    let points: Vec<(usize, Weights)> = (0..=degree)
        .map(|z| {
            let mut w = weights.clone();
            w.set(
                rewritten.equality_predicate.name(),
                weight_int(z as i64),
                weight_int(1),
            );
            (n, w)
        })
        .collect();
    let reports = plan
        .count_batch(&points)
        .expect("plan evaluation cannot fail after planning succeeded");
    let samples: Vec<(Weight, Weight)> = reports
        .into_iter()
        .enumerate()
        .map(|(z, report)| (weight_int(z as i64), report.value))
        .collect();
    interpolate(&samples)
        .get(n)
        .cloned()
        .unwrap_or_else(Weight::zero)
}

/// Computes `WFOMC(Φ, n, w, w̄)` for a sentence Φ *with* equality, using an
/// oracle that can only count sentences *without* equality.
///
/// The oracle is called `n² + 1` times, once per interpolation point, with the
/// rewritten sentence, the extended vocabulary and the weights extended by
/// `w(E) = z`, `w̄(E) = 1`. Prefer [`wfomc_via_equality_removal`], which
/// analyzes the rewritten sentence once; this variant exists for custom
/// oracles (and as the literal Lemma 3.5 protocol).
pub fn wfomc_via_equality_removal_with_oracle(
    formula: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weights: &Weights,
    mut oracle: impl FnMut(&Formula, &Vocabulary, usize, &Weights) -> Weight,
) -> Weight {
    let rewritten = remove_equality(formula, vocabulary);
    coefficient_by_interpolation(&rewritten, n, weights, |w| {
        oracle(&rewritten.formula, &rewritten.vocabulary, n, w)
    })
}

/// Shared core of the two equality-removal entry points: sweeps
/// `w(E) = z` over the `n² + 1` interpolation points, evaluates each with
/// the supplied counter, and extracts the coefficient of `zⁿ`.
fn coefficient_by_interpolation(
    rewritten: &EqualityFree,
    n: usize,
    weights: &Weights,
    mut point_value: impl FnMut(&Weights) -> Weight,
) -> Weight {
    let degree = n * n;
    let mut points: Vec<(Weight, Weight)> = Vec::with_capacity(degree + 1);
    for z in 0..=degree {
        let mut w = weights.clone();
        w.set(
            rewritten.equality_predicate.name(),
            weight_int(z as i64),
            weight_int(1),
        );
        points.push((weight_int(z as i64), point_value(&w)));
    }
    let coefficients = interpolate(&points);
    coefficients.get(n).cloned().unwrap_or_else(Weight::zero)
}

/// Computes `WFOMC(Φ, n, w, w̄)` for a sentence Φ *with* equality through the
/// **compiled** grounded pipeline: the rewritten sentence is grounded and
/// knowledge-compiled to a d-DNNF circuit *once*, and the `n² + 1`
/// interpolation points are then `n² + 1` linear circuit evaluations — the
/// compile-once / evaluate-many payoff of `wfomc-circuit`.
///
/// Equivalent to [`wfomc_via_equality_removal`] with a grounded oracle, but
/// without re-running the counting search per evaluation point.
pub fn wfomc_via_equality_removal_compiled(
    formula: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weights: &Weights,
) -> Weight {
    let rewritten = remove_equality(formula, vocabulary);
    let compiled = CompiledWfomc::compile(&rewritten.formula, &rewritten.vocabulary, n);
    coefficient_by_interpolation(&rewritten, n, weights, |w| compiled.wfomc(w))
}

/// Lagrange interpolation: given `d+1` points with distinct x-coordinates,
/// returns the coefficients (low degree first) of the unique polynomial of
/// degree ≤ d passing through them. Exact rational arithmetic throughout.
pub fn interpolate(points: &[(Weight, Weight)]) -> Vec<Weight> {
    let d = points.len();
    if d == 0 {
        return vec![];
    }
    let mut result = vec![Weight::zero(); d];
    for (i, (xi, yi)) in points.iter().enumerate() {
        // Build the Lagrange basis polynomial L_i = Π_{j≠i} (x − x_j) / (x_i − x_j).
        let mut basis = vec![Weight::one()]; // polynomial "1"
        let mut denom = Weight::one();
        for (j, (xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            basis = poly_mul_linear(&basis, xj);
            denom *= xi - xj;
        }
        let scale = yi / denom;
        for (k, c) in basis.iter().enumerate() {
            result[k] += c * &scale;
        }
    }
    result
}

/// Multiplies a polynomial (low degree first) by `(x − root)`.
fn poly_mul_linear(poly: &[Weight], root: &Weight) -> Vec<Weight> {
    let mut out = vec![Weight::zero(); poly.len() + 1];
    for (k, c) in poly.iter().enumerate() {
        out[k + 1] += c;
        out[k] -= c * root;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::{brute_force_wfomc, wfomc as ground_wfomc};
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;

    #[test]
    fn interpolation_recovers_polynomial_coefficients() {
        // f(x) = 2 − 3x + x³ sampled at 0..3.
        let f = |x: i64| weight_int(2 - 3 * x + x * x * x);
        let points: Vec<_> = (0..=3).map(|x| (weight_int(x), f(x))).collect();
        let coeffs = interpolate(&points);
        assert_eq!(coeffs[0], weight_int(2));
        assert_eq!(coeffs[1], weight_int(-3));
        assert_eq!(coeffs[2], weight_int(0));
        assert_eq!(coeffs[3], weight_int(1));
    }

    #[test]
    fn rewriting_removes_equality_syntax() {
        let f = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
        let rewritten = remove_equality(&f, &f.vocabulary());
        assert!(!rewritten.formula.uses_equality());
        assert!(rewritten
            .vocabulary
            .contains(rewritten.equality_predicate.name()));
    }

    #[test]
    fn equality_removal_preserves_wfomc_via_oracle() {
        // ∀x∀y (R(x,y) ∨ x = y): tuples off the diagonal must be present.
        let f = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 2, 3)]);
        for n in 0..=2 {
            let direct = brute_force_wfomc(&f, &voc, n, &weights);
            let via_removal =
                wfomc_via_equality_removal_with_oracle(&f, &voc, n, &weights, |g, v, n, w| {
                    ground_wfomc(g, v, n, w)
                });
            assert_eq!(direct, via_removal, "n = {n}");
        }
    }

    #[test]
    fn planned_equality_removal_matches_the_oracle_protocol() {
        // The rewritten sentence is FO² here, so the symbolic variant is one
        // FO² evaluation over polynomial-valued cells.
        let f = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 2, 3)]);
        for n in 0..=3 {
            let direct = brute_force_wfomc(&f, &voc, n, &weights);
            let planned = wfomc_via_equality_removal(&f, &voc, n, &weights);
            assert_eq!(direct, planned, "n = {n}");
        }
        // A lifted plan answers the rewritten sentence (it is FO²).
        let rewritten = remove_equality(&f, &voc);
        let plan = crate::Solver::new()
            .plan(&crate::Problem::new(rewritten.formula.clone()))
            .unwrap();
        assert_eq!(plan.method(), crate::Method::Fo2);
    }

    #[test]
    fn extension_axiom_inequalities_are_supported() {
        // The Table 2 extension axiom uses ≠; check the rewriting pipeline on
        // n = 2 (where the axiom is vacuously true because no three distinct
        // elements exist).
        let f = catalog::extension_axiom();
        let voc = f.vocabulary();
        let weights = Weights::ones();
        let n = 2;
        let direct = brute_force_wfomc(&f, &voc, n, &weights);
        let via_removal =
            wfomc_via_equality_removal_with_oracle(&f, &voc, n, &weights, |g, v, n, w| {
                ground_wfomc(g, v, n, w)
            });
        assert_eq!(direct, via_removal);
        // The planned variant grounds (the axiom is FO³) through one cached
        // lineage per domain size.
        assert_eq!(wfomc_via_equality_removal(&f, &voc, n, &weights), direct);
        // Sanity: 16 structures over E/2 at n=2, all satisfy the axiom.
        assert_eq!(direct, weight_int(16));
    }

    #[test]
    fn compiled_equality_removal_matches_brute_force() {
        let f = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
        let voc = f.vocabulary();
        let weights = Weights::from_ints([("R", 2, 3)]);
        for n in 0..=2 {
            let direct = brute_force_wfomc(&f, &voc, n, &weights);
            let compiled = wfomc_via_equality_removal_compiled(&f, &voc, n, &weights);
            assert_eq!(direct, compiled, "n = {n}");
        }
    }

    #[test]
    fn compiled_equality_removal_matches_the_oracle_formulation() {
        // The extension-axiom pipeline, through one compiled circuit instead
        // of n² + 1 oracle searches.
        let f = catalog::extension_axiom();
        let voc = f.vocabulary();
        let n = 2;
        let via_oracle =
            wfomc_via_equality_removal_with_oracle(&f, &voc, n, &Weights::ones(), |g, v, n, w| {
                ground_wfomc(g, v, n, w)
            });
        let via_circuit = wfomc_via_equality_removal_compiled(&f, &voc, n, &Weights::ones());
        assert_eq!(via_oracle, via_circuit);
        assert_eq!(via_circuit, weight_int(16));
    }

    #[test]
    fn symbolic_path_matches_the_interpolation_oracle() {
        // The Poly-algebra default against the n² + 1-point Lagrange
        // protocol, on an FO² rewrite and on a grounded (FO³) rewrite, with
        // zero and negative weights in the mix.
        let fo2 = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
        let fo3 = catalog::extension_axiom();
        for (f, max_n) in [(fo2, 3), (fo3, 2)] {
            let voc = f.vocabulary();
            for weights in [
                Weights::ones(),
                Weights::from_ints([("R", 2, 3), ("E", 1, 1)]),
                Weights::from_ints([("R", 0, -2), ("E", -1, 2)]),
            ] {
                for n in 0..=max_n {
                    let symbolic = wfomc_via_equality_removal(&f, &voc, n, &weights);
                    let interpolated =
                        wfomc_via_equality_removal_interpolated(&f, &voc, n, &weights);
                    assert_eq!(symbolic, interpolated, "{f} at n = {n}");
                }
            }
        }
    }

    #[test]
    fn oracle_is_called_polynomially_many_times() {
        let f = forall(["x", "y"], or(vec![atom("R", &["x", "y"]), eq("x", "y")]));
        let voc = f.vocabulary();
        let mut calls = 0usize;
        let n = 2;
        let _ =
            wfomc_via_equality_removal_with_oracle(&f, &voc, n, &Weights::ones(), |g, v, n, w| {
                calls += 1;
                ground_wfomc(g, v, n, w)
            });
        assert_eq!(calls, n * n + 1);
    }
}
