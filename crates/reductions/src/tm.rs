//! Nondeterministic multi-tape counting Turing machines and their simulator.
//!
//! The #P₁-hardness proof (Lemma 3.8 / 3.9) works with counting TMs over a
//! unary input alphabet: the input is `1ⁿ`, the machine runs for `c·n` steps,
//! and the quantity of interest is the number of accepting computation paths.
//! This module provides a concrete machine description, a step semantics
//! matching the Appendix B encoding (each state reads and writes exactly one
//! designated tape and moves that head left or right), and an exact path
//! counter used to validate the Θ₁ encoding.

use std::collections::BTreeMap;

use num_bigint::BigUint;
use num_traits::{One, Zero};

/// A head movement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// Move the head one cell to the left (no-op at the left end, mirroring
    /// the encoding's boundary handling).
    Left,
    /// Move the head one cell to the right (no-op at the right end).
    Right,
}

/// One nondeterministic choice of a transition: next state, symbol written,
/// and head movement on the state's designated tape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Choice {
    /// The successor state.
    pub next_state: usize,
    /// The symbol written (tapes are binary).
    pub write: bool,
    /// The head movement.
    pub movement: Move,
}

/// A nondeterministic multi-tape counting Turing machine over the binary tape
/// alphabet and a unary input alphabet.
///
/// Following Appendix B, every state operates on exactly one tape per step
/// (`tape_of_state`), which is what keeps the Θ₁ encoding inside FO³.
#[derive(Clone, Debug)]
pub struct CountingTm {
    /// Number of states (states are `0..num_states`).
    pub num_states: usize,
    /// The initial state (`q₁` in the paper).
    pub initial_state: usize,
    /// The accepting states.
    pub accepting_states: Vec<usize>,
    /// Number of tapes; tape 0 is the input tape.
    pub num_tapes: usize,
    /// The tape each state reads and writes.
    pub tape_of_state: Vec<usize>,
    /// `transitions[(state, symbol)]` — the nondeterministic choices.
    pub transitions: BTreeMap<(usize, bool), Vec<Choice>>,
    /// The number of epochs `c`: the machine runs for exactly `c·n` steps on
    /// input `1ⁿ` and each tape has `c·n` cells.
    pub epochs: usize,
}

impl CountingTm {
    /// Validates internal consistency (state/tape indices in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_state >= self.num_states {
            return Err("initial state out of range".to_string());
        }
        if self.tape_of_state.len() != self.num_states {
            return Err("tape_of_state must have one entry per state".to_string());
        }
        if self.epochs == 0 {
            return Err("the machine must run for at least one epoch".to_string());
        }
        for (&(state, _), choices) in &self.transitions {
            if state >= self.num_states {
                return Err(format!("transition from unknown state {state}"));
            }
            for c in choices {
                if c.next_state >= self.num_states {
                    return Err(format!("transition to unknown state {}", c.next_state));
                }
            }
        }
        for &q in &self.accepting_states {
            if q >= self.num_states {
                return Err(format!("accepting state {q} out of range"));
            }
        }
        for &t in &self.tape_of_state {
            if t >= self.num_tapes {
                return Err(format!("tape {t} out of range"));
            }
        }
        Ok(())
    }

    /// Counts the accepting computations on input `1ⁿ`.
    ///
    /// A computation makes exactly `c·n − 1` transitions (time steps
    /// `1..c·n`, matching the encoding where time 1 is the initial
    /// configuration) and accepts if the machine is in an accepting state at
    /// the final time step. Paths with no applicable transition die and are
    /// not counted.
    pub fn count_accepting(&self, n: usize) -> BigUint {
        if n == 0 {
            return BigUint::zero();
        }
        let total_time = self.epochs * n;
        let tape_len = self.epochs * n;
        // Input tape: n ones followed by zeros; other tapes all zeros.
        let mut tapes = vec![vec![false; tape_len]; self.num_tapes];
        for cell in tapes[0].iter_mut().take(n) {
            *cell = true;
        }
        let heads = vec![0usize; self.num_tapes];
        self.count_from(self.initial_state, tapes, heads, 1, total_time)
    }

    fn count_from(
        &self,
        state: usize,
        tapes: Vec<Vec<bool>>,
        heads: Vec<usize>,
        time: usize,
        total_time: usize,
    ) -> BigUint {
        if time == total_time {
            return if self.accepting_states.contains(&state) {
                BigUint::one()
            } else {
                BigUint::zero()
            };
        }
        let tape = self.tape_of_state[state];
        let head = heads[tape];
        let symbol = tapes[tape][head];
        let Some(choices) = self.transitions.get(&(state, symbol)) else {
            return BigUint::zero();
        };
        let mut total = BigUint::zero();
        for choice in choices {
            let mut new_tapes = tapes.clone();
            let mut new_heads = heads.clone();
            new_tapes[tape][head] = choice.write;
            new_heads[tape] = match choice.movement {
                Move::Left => head.saturating_sub(1),
                Move::Right => (head + 1).min(new_tapes[tape].len() - 1),
            };
            total += self.count_from(
                choice.next_state,
                new_tapes,
                new_heads,
                time + 1,
                total_time,
            );
        }
        total
    }
}

/// A single-state machine that nondeterministically writes 0 or 1 and moves
/// right at every step. It has `2^{c·n − 1}` accepting computations on input
/// `1ⁿ` — a convenient machine for validating the Θ₁ encoding because the
/// count is known in closed form.
pub fn coin_flip_machine(epochs: usize) -> CountingTm {
    let mut transitions = BTreeMap::new();
    for symbol in [false, true] {
        transitions.insert(
            (0, symbol),
            vec![
                Choice {
                    next_state: 0,
                    write: false,
                    movement: Move::Right,
                },
                Choice {
                    next_state: 0,
                    write: true,
                    movement: Move::Right,
                },
            ],
        );
    }
    CountingTm {
        num_states: 1,
        initial_state: 0,
        accepting_states: vec![0],
        num_tapes: 1,
        tape_of_state: vec![0],
        transitions,
        epochs,
    }
}

/// A deterministic machine that scans the input tape and accepts; it has
/// exactly one accepting computation for every `n ≥ 1`.
pub fn scanner_machine(epochs: usize) -> CountingTm {
    let mut transitions = BTreeMap::new();
    for symbol in [false, true] {
        transitions.insert(
            (0, symbol),
            vec![Choice {
                next_state: 0,
                write: symbol,
                movement: Move::Right,
            }],
        );
    }
    CountingTm {
        num_states: 1,
        initial_state: 0,
        accepting_states: vec![0],
        num_tapes: 1,
        tape_of_state: vec![0],
        transitions,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_validate() {
        assert!(coin_flip_machine(1).validate().is_ok());
        assert!(scanner_machine(2).validate().is_ok());
        let mut broken = scanner_machine(1);
        broken.initial_state = 7;
        assert!(broken.validate().is_err());
        let mut broken = scanner_machine(1);
        broken.epochs = 0;
        assert!(broken.validate().is_err());
    }

    #[test]
    fn coin_flip_machine_counts_powers_of_two() {
        let tm = coin_flip_machine(1);
        // c·n − 1 nondeterministic steps, each with 2 choices.
        for n in 1..=4 {
            assert_eq!(
                tm.count_accepting(n),
                BigUint::from(1u32) << (n - 1),
                "n = {n}"
            );
        }
        let tm2 = coin_flip_machine(2);
        for n in 1..=3 {
            assert_eq!(tm2.count_accepting(n), BigUint::from(1u32) << (2 * n - 1));
        }
    }

    #[test]
    fn scanner_machine_is_deterministic() {
        let tm = scanner_machine(1);
        for n in 1..=5 {
            assert_eq!(tm.count_accepting(n), BigUint::one(), "n = {n}");
        }
        assert_eq!(tm.count_accepting(0), BigUint::zero());
    }

    #[test]
    fn dead_paths_are_not_counted() {
        // A machine with no transition on reading 1: the very first step on
        // input 1ⁿ (n ≥ 1) dies unless c·n = 1.
        let mut tm = scanner_machine(1);
        tm.transitions.remove(&(0, true));
        assert_eq!(tm.count_accepting(1), BigUint::one(), "no step needed");
        assert_eq!(tm.count_accepting(2), BigUint::zero());
    }

    #[test]
    fn rejecting_states_yield_zero() {
        let mut tm = scanner_machine(1);
        tm.accepting_states.clear();
        assert_eq!(tm.count_accepting(3), BigUint::zero());
    }
}
