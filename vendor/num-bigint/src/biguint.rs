//! Arbitrary-precision unsigned integers on little-endian `u32` limbs, with
//! an inline small-value representation and Karatsuba multiplication.
//!
//! # Representation
//!
//! [`BigUint`] stores any value below `2⁶⁴` inline as a single `u64`
//! ([`Repr::Small`]) and spills to a heap limb vector ([`Repr::Heap`]) only
//! for wider values. The WFOMC counters, FO² pair tables and polynomial
//! coefficients flowing through this workspace are overwhelmingly small
//! (zeros, ones, binomials, small weights), so the inline variant means the
//! common case never touches the allocator — construction, `Clone`, drop and
//! the arithmetic fast paths are all register operations.
//!
//! The representation is **canonical**: every value `≤ u64::MAX` uses
//! `Small`, and a `Heap` vector always has ≥ 3 limbs and no trailing zeros.
//! Derived equality/hashing are therefore value equality, and every
//! constructor funnels through [`BigUint::from_limbs`] / [`BigUint::from_u128`]
//! which restore the invariant (e.g. a subtraction that shrinks a heap value
//! back under 64 bits collapses it to `Small`).
//!
//! # Multiplication
//!
//! Products dispatch on size: small×small is one `u128` multiply; mixed and
//! heap products run limb-wise schoolbook below [`KARATSUBA_THRESHOLD`]
//! limbs and split via Karatsuba (three half-size products instead of four)
//! above it. The schoolbook path is kept callable
//! ([`BigUint::mul_schoolbook`]) as the differential-testing reference.
//! Division is Knuth TAOCP Algorithm D, unchanged except for single-`u64`
//! divisor fast paths; gcd is Euclid's algorithm with a `u64` tail.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Shl, Sub};
use std::str::FromStr;

use num_traits::{One, ToPrimitive, Zero};

const LIMB_BITS: u64 = 32;

/// Operands with at least this many limbs on *both* sides multiply via
/// Karatsuba; below it schoolbook wins, because the three recursive products
/// do not amortize their extra additions and temporary allocations.
///
/// 48 limbs = 1536 bits. Measured on this workspace's `bignum` bench the
/// dispatch is a wash against schoolbook at 32 limbs and clearly ahead from
/// 64 limbs up (~1.4× at 64, ~1.8× at 256, ~3.5× on the square-chain
/// workload whose top products reach thousands of limbs); 48 keeps the
/// crossover region on the schoolbook side. GMP's tuned thresholds for
/// comparable limb sizes land in the same range.
pub const KARATSUBA_THRESHOLD: usize = 48;

/// The two storage variants. Canonical-form invariant: `Small` holds every
/// value `< 2⁶⁴`; `Heap` is little-endian with no trailing zeros and always
/// at least 3 limbs. Derived `PartialEq`/`Hash` rely on this.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Repr {
    Small(u64),
    Heap(Vec<u32>),
}

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BigUint {
    repr: Repr,
}

impl Default for BigUint {
    fn default() -> Self {
        BigUint::small(0)
    }
}

// ---------------------------------------------------------------------------
// Limb-slice helpers (shared by schoolbook, Karatsuba and Knuth-D)
// ---------------------------------------------------------------------------

/// Drops trailing zero limbs from a view.
fn trim(s: &[u32]) -> &[u32] {
    let mut n = s.len();
    while n > 0 && s[n - 1] == 0 {
        n -= 1;
    }
    &s[..n]
}

/// Limb-wise sum of two magnitudes.
fn add_slices(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (longer, shorter) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(longer.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in longer.iter().enumerate() {
        let sum = u64::from(limb) + u64::from(shorter.get(i).copied().unwrap_or(0)) + carry;
        out.push(sum as u32);
        carry = sum >> 32;
    }
    if carry > 0 {
        out.push(carry as u32);
    }
    out
}

/// Adds `add` into `acc` starting at limb `offset`, propagating the carry.
///
/// The caller guarantees the sum fits in `acc` (Karatsuba's recombination
/// does by construction).
fn add_into(acc: &mut [u32], add: &[u32], offset: usize) {
    let mut carry = 0u64;
    for (i, &limb) in add.iter().enumerate() {
        let sum = u64::from(acc[offset + i]) + u64::from(limb) + carry;
        acc[offset + i] = sum as u32;
        carry = sum >> 32;
    }
    let mut k = offset + add.len();
    while carry > 0 {
        let sum = u64::from(acc[k]) + carry;
        acc[k] = sum as u32;
        carry = sum >> 32;
        k += 1;
    }
}

/// Subtracts `sub` from `acc` in place, propagating the borrow.
///
/// The caller guarantees `acc ≥ sub` as magnitudes (Karatsuba's middle term
/// is non-negative by construction; [`BigUint::sub_mag`] asserts it).
fn sub_in_place(acc: &mut [u32], sub: &[u32]) {
    let sub = trim(sub);
    let mut borrow = 0i64;
    for (i, &limb) in sub.iter().enumerate() {
        let diff = i64::from(acc[i]) - i64::from(limb) - borrow;
        if diff < 0 {
            acc[i] = (diff + (1i64 << 32)) as u32;
            borrow = 1;
        } else {
            acc[i] = diff as u32;
            borrow = 0;
        }
    }
    let mut k = sub.len();
    while borrow > 0 {
        let diff = i64::from(acc[k]) - borrow;
        if diff < 0 {
            acc[k] = (diff + (1i64 << 32)) as u32;
            borrow = 1;
        } else {
            acc[k] = diff as u32;
            borrow = 0;
        }
        k += 1;
    }
}

/// Schoolbook product of two limb slices (`O(len(a) · len(b))` single-limb
/// multiplications). The pre-Karatsuba reference implementation.
fn schoolbook_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &y) in b.iter().enumerate() {
            let t = u64::from(x) * u64::from(y) + u64::from(out[i + j]) + carry;
            out[i + j] = t as u32;
            carry = t >> 32;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let t = u64::from(out[k]) + carry;
            out[k] = t as u32;
            carry = t >> 32;
            k += 1;
        }
    }
    out
}

/// Size-dispatching product: Karatsuba when both operands clear the
/// threshold, schoolbook otherwise (including the unbalanced big×small case,
/// where splitting buys nothing).
fn mul_limbs(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
        karatsuba(a, b)
    } else {
        schoolbook_mul(a, b)
    }
}

/// Karatsuba multiplication: split both operands at `m` limbs into
/// `a = a₁·B^m + a₀`, `b = b₁·B^m + b₀` (B = 2³²), compute the three products
/// `z₀ = a₀b₀`, `z₂ = a₁b₁`, `z₁ = (a₀+a₁)(b₀+b₁) − z₀ − z₂`, and recombine
/// as `z₂·B^{2m} + z₁·B^m + z₀`.
fn karatsuba(a: &[u32], b: &[u32]) -> Vec<u32> {
    let m = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = (&a[..m.min(a.len())], &a[m.min(a.len())..]);
    let (b0, b1) = (&b[..m.min(b.len())], &b[m.min(b.len())..]);

    let z0 = mul_limbs(trim(a0), trim(b0));
    let z2 = mul_limbs(trim(a1), trim(b1));
    let asum = add_slices(trim(a0), trim(a1));
    let bsum = add_slices(trim(b0), trim(b1));
    let mut z1 = mul_limbs(&asum, &bsum);
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    let mut out = vec![0u32; a.len() + b.len()];
    add_into(&mut out, trim(&z0), 0);
    add_into(&mut out, trim(&z1), m);
    add_into(&mut out, trim(&z2), 2 * m);
    out
}

/// Euclid's gcd on machine words.
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

// ---------------------------------------------------------------------------
// BigUint
// ---------------------------------------------------------------------------

impl BigUint {
    #[inline]
    fn small(v: u64) -> BigUint {
        BigUint {
            repr: Repr::Small(v),
        }
    }

    /// Restores canonical form from a limb vector: trailing zeros trimmed,
    /// values that fit 64 bits collapsed to the inline variant.
    fn from_limbs(mut limbs: Vec<u32>) -> BigUint {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => BigUint::small(0),
            1 => BigUint::small(u64::from(limbs[0])),
            2 => BigUint::small(u64::from(limbs[0]) | (u64::from(limbs[1]) << 32)),
            _ => {
                #[cfg(feature = "obs")]
                wfomc_obs::metrics::BIGNUM_HEAP_SPILLS.inc();
                BigUint {
                    repr: Repr::Heap(limbs),
                }
            }
        }
    }

    fn from_u128(v: u128) -> BigUint {
        if v <= u128::from(u64::MAX) {
            BigUint::small(v as u64)
        } else {
            let mut limbs = Vec::with_capacity(4);
            let mut rest = v;
            while rest > 0 {
                limbs.push(rest as u32);
                rest >>= 32;
            }
            BigUint::from_limbs(limbs)
        }
    }

    /// The value as a `u64`, when it fits. Canonical form guarantees this is
    /// exactly the inline variant.
    #[inline]
    fn as_small(&self) -> Option<u64> {
        match self.repr {
            Repr::Small(v) => Some(v),
            Repr::Heap(_) => None,
        }
    }

    /// A limb-slice view of the value; `buf` backs the inline variant.
    #[inline]
    fn limbs<'a>(&'a self, buf: &'a mut [u32; 2]) -> &'a [u32] {
        match &self.repr {
            Repr::Small(v) => {
                buf[0] = *v as u32;
                buf[1] = (*v >> 32) as u32;
                let len = if *v == 0 {
                    0
                } else if *v >> 32 == 0 {
                    1
                } else {
                    2
                };
                &buf[..len]
            }
            Repr::Heap(l) => l,
        }
    }

    fn into_limb_vec(self) -> Vec<u32> {
        match self.repr {
            Repr::Small(_) => {
                let mut buf = [0u32; 2];
                self.limbs(&mut buf).to_vec()
            }
            Repr::Heap(l) => l,
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u64 {
        match &self.repr {
            Repr::Small(v) => 64 - u64::from(v.leading_zeros()),
            Repr::Heap(l) => {
                l.len() as u64 * LIMB_BITS
                    - u64::from(l.last().expect("heap repr is non-empty").leading_zeros())
            }
        }
    }

    fn add_mag(&self, other: &BigUint) -> BigUint {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return BigUint::from_u128(u128::from(a) + u128::from(b));
        }
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        BigUint::from_limbs(add_slices(self.limbs(&mut ba), other.limbs(&mut bb)))
    }

    /// Magnitude subtraction.
    ///
    /// # Panics
    /// Panics if `other > self`.
    fn sub_mag(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return BigUint::small(a - b);
        }
        // self is heap here (self ≥ other and at least one side is heap).
        let mut out = self.clone().into_limb_vec();
        let mut bb = [0u32; 2];
        sub_in_place(&mut out, other.limbs(&mut bb));
        BigUint::from_limbs(out)
    }

    fn mul_mag(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return BigUint::from_u128(u128::from(a) * u128::from(b));
        }
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        BigUint::from_limbs(mul_limbs(self.limbs(&mut ba), other.limbs(&mut bb)))
    }

    /// Schoolbook product regardless of operand size — the pre-Karatsuba
    /// reference path, kept callable for differential tests and benchmarks.
    #[doc(hidden)]
    pub fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        BigUint::from_limbs(schoolbook_mul(self.limbs(&mut ba), other.limbs(&mut bb)))
    }

    fn shl_bits(&self, shift: u64) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        if let Some(v) = self.as_small() {
            if shift <= 64 {
                return BigUint::from_u128(u128::from(v) << shift);
            }
        }
        let limb_shift = (shift / LIMB_BITS) as usize;
        let bit_shift = (shift % LIMB_BITS) as u32;
        let mut buf = [0u32; 2];
        let src = self.limbs(&mut buf);
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            let mut carry = 0u32;
            for &l in src {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    fn shr_bits(&self, shift: u64) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        if let Some(v) = self.as_small() {
            return BigUint::small(if shift >= 64 { 0 } else { v >> shift });
        }
        let limb_shift = (shift / LIMB_BITS) as usize;
        let mut buf = [0u32; 2];
        let limbs = self.limbs(&mut buf);
        if limb_shift >= limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (shift % LIMB_BITS) as u32;
        let src = &limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).copied().unwrap_or(0) << (32 - bit_shift);
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Greatest common divisor by Euclid's algorithm: heap-sized operands
    /// shed whole limbs per division step (far fewer iterations than the
    /// subtractive binary gcd on operands of different sizes), and as soon
    /// as one side fits a machine word the tail runs entirely on `u64`s —
    /// which is where the rational-normalization hot path spends its time.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        loop {
            match (a.as_small(), b.as_small()) {
                (Some(x), Some(y)) => return BigUint::small(gcd_u64(x, y)),
                (Some(x), None) => return BigUint::small(gcd_u64(x, b.rem_u64(x))),
                (None, Some(y)) => return BigUint::small(gcd_u64(y, a.rem_u64(y))),
                (None, None) => {
                    let (_, r) = a.div_rem(&b);
                    a = std::mem::replace(&mut b, r);
                    if b.is_zero() {
                        return a;
                    }
                }
            }
        }
    }

    /// Long division (Knuth TAOCP vol. 2, Algorithm D): returns
    /// `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        // Machine-word fast paths: small/small is one hardware division,
        // heap/small runs one u128 division per limb.
        if let Some(d) = divisor.as_small() {
            if let Some(a) = self.as_small() {
                return (BigUint::small(a / d), BigUint::small(a % d));
            }
            let (q, r) = self.div_rem_u64(d);
            return (q, BigUint::small(r));
        }

        // D1: normalize so the divisor's top limb has its high bit set.
        // The divisor is heap here, so n ≥ 3 and v[n−2] below is in bounds.
        let mut vbuf = [0u32; 2];
        let top = *trim(divisor.limbs(&mut vbuf))
            .last()
            .expect("non-zero divisor");
        let shift = u64::from(top.leading_zeros());
        let v = divisor.shl_bits(shift).into_limb_vec();
        let mut u = self.shl_bits(shift).into_limb_vec();
        let n = v.len();
        let m = u.len() - n;
        u.push(0);

        let b = 1u64 << 32;
        let mut q_limbs = vec![0u32; m + 1];
        // D2–D7: compute one quotient limb per iteration, high to low.
        for j in (0..=m).rev() {
            // D3: estimate the quotient limb from the top limbs.
            let top = (u64::from(u[j + n]) << 32) | u64::from(u[j + n - 1]);
            let mut qhat = top / u64::from(v[n - 1]);
            let mut rhat = top % u64::from(v[n - 1]);
            while qhat >= b || qhat * u64::from(v[n - 2]) > ((rhat << 32) | u64::from(u[j + n - 2]))
            {
                qhat -= 1;
                rhat += u64::from(v[n - 1]);
                if rhat >= b {
                    break;
                }
            }

            // D4: multiply-and-subtract qhat·v from u[j .. j+n].
            let mut mul_carry = 0u64;
            let mut borrow = 0i64;
            for i in 0..n {
                let p = qhat * u64::from(v[i]) + mul_carry;
                mul_carry = p >> 32;
                let d = i64::from(u[j + i]) - (p as u32 as i64) - borrow;
                if d < 0 {
                    u[j + i] = (d + b as i64) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = d as u32;
                    borrow = 0;
                }
            }
            let d = i64::from(u[j + n]) - mul_carry as i64 - borrow;
            if d < 0 {
                // D6: the estimate was one too large — add the divisor back.
                u[j + n] = (d + b as i64) as u32;
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let t = u64::from(u[j + i]) + u64::from(v[i]) + carry;
                    u[j + i] = t as u32;
                    carry = t >> 32;
                }
                u[j + n] = (u64::from(u[j + n]) + carry) as u32;
            } else {
                u[j + n] = d as u32;
            }
            q_limbs[j] = qhat as u32;
        }

        u.truncate(n);
        let remainder = BigUint::from_limbs(u).shr_bits(shift);
        (BigUint::from_limbs(q_limbs), remainder)
    }

    /// Division by a machine word: one `u128` division per limb.
    fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let d = u128::from(divisor);
        let mut buf = [0u32; 2];
        let limbs = self.limbs(&mut buf);
        let mut out = vec![0u32; limbs.len()];
        let mut rem = 0u64;
        for i in (0..limbs.len()).rev() {
            let cur = (u128::from(rem) << 32) | u128::from(limbs[i]);
            out[i] = (cur / d) as u32;
            rem = (cur % d) as u64;
        }
        (BigUint::from_limbs(out), rem)
    }

    /// Remainder modulo a machine word.
    fn rem_u64(&self, divisor: u64) -> u64 {
        assert!(divisor != 0, "division by zero");
        if let Some(v) = self.as_small() {
            return v % divisor;
        }
        let d = u128::from(divisor);
        let mut buf = [0u32; 2];
        let limbs = self.limbs(&mut buf);
        let mut rem = 0u64;
        for i in (0..limbs.len()).rev() {
            rem = (((u128::from(rem) << 32) | u128::from(limbs[i])) % d) as u64;
        }
        rem
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> BigUint {
                BigUint::from_u128(v as u128)
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, u128, usize);

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // Canonical form: heap values are always ≥ 2⁶⁴ > any small value.
            (Repr::Small(_), Repr::Heap(_)) => Ordering::Less,
            (Repr::Heap(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Heap(a), Repr::Heap(b)) => match a.len().cmp(&b.len()) {
                Ordering::Equal => a.iter().rev().cmp(b.iter().rev()),
                unequal => unequal,
            },
        }
    }
}

macro_rules! forward_uint_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$inner(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$inner(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$inner(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$inner(&rhs)
            }
        }
    };
}

forward_uint_binop!(Add, add, add_mag);
forward_uint_binop!(Sub, sub, sub_mag);
forward_uint_binop!(Mul, mul, mul_mag);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_mag(rhs);
    }
}

impl AddAssign<BigUint> for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        *self = self.add_mag(&rhs);
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        self.shl_bits(shift as u64)
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        self.shl_bits(shift as u64)
    }
}

impl Zero for BigUint {
    fn zero() -> Self {
        BigUint::small(0)
    }
    fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }
}

impl One for BigUint {
    fn one() -> Self {
        BigUint::small(1)
    }
}

impl ToPrimitive for BigUint {
    fn to_i64(&self) -> Option<i64> {
        self.to_u64().and_then(|v| i64::try_from(v).ok())
    }
    fn to_u64(&self) -> Option<u64> {
        self.as_small()
    }
    fn to_f64(&self) -> Option<f64> {
        match &self.repr {
            Repr::Small(v) => Some(*v as f64),
            Repr::Heap(l) => {
                let mut acc = 0.0f64;
                for &limb in l.iter().rev() {
                    acc = acc * 4294967296.0 + f64::from(limb);
                }
                Some(acc)
            }
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel off 9 decimal digits at a time.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        write!(f, "{}", chunks.last().unwrap())?;
        for chunk in chunks.iter().rev().skip(1) {
            write!(f, "{chunk:09}")?;
        }
        Ok(())
    }
}

/// Error parsing a decimal unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError;

impl FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigUintError);
        }
        let mut acc = BigUint::zero();
        let ten_pow_9 = BigUint::from(1_000_000_000u32);
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 9).min(bytes.len());
            let chunk: u32 = s[i..end].parse().map_err(|_| ParseBigUintError)?;
            let scale = 10u64.pow((end - i) as u32);
            acc = if scale == 1_000_000_000 {
                acc.mul_mag(&ten_pow_9)
            } else {
                acc.mul_mag(&BigUint::from(scale))
            };
            acc += BigUint::from(chunk);
            i = end;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn u(v: u128) -> BigUint {
        BigUint::from(v)
    }

    fn is_inline(x: &BigUint) -> bool {
        matches!(x.repr, Repr::Small(_))
    }

    /// A value with exactly `limbs` limbs, all bits set.
    fn dense(limbs: usize) -> BigUint {
        BigUint::from_limbs(vec![u32::MAX; limbs])
    }

    #[test]
    fn add_sub_mul_round_trip() {
        let a = u(u64::MAX as u128) * u(u64::MAX as u128);
        let b = u(1234567890123456789);
        let sum = &a + &b;
        assert_eq!(&sum - &b, a);
        assert_eq!((&a * &b).div_rem(&b), (a.clone(), BigUint::zero()));
    }

    #[test]
    fn division_with_remainder() {
        let a = u(10u128.pow(30) + 7);
        let d = u(10u128.pow(15));
        let (q, r) = a.div_rem(&d);
        assert_eq!(q, u(10u128.pow(15)));
        assert_eq!(r, u(7));
    }

    #[test]
    fn shifts_match_powers_of_two() {
        assert_eq!(u(1) << 100, u(1 << 50) * u(1 << 50));
        assert_eq!((u(1) << 100).bits(), 101);
        assert_eq!(u(0) << 5, u(0));
        // Shift amounts straddling the inline width.
        assert_eq!(u(1) << 63, u(1u128 << 63));
        assert_eq!(u(1) << 64, u(1u128 << 64));
        assert_eq!(u(3) << 63, u(3u128 << 63));
        assert_eq!((u(3) << 64).shr_bits(64), u(3));
        assert_eq!((u(1) << 200).shr_bits(137), u(1) << 63);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in [
            "0",
            "7",
            "1000000000",
            "340282366920938463463374607431768211455",
        ] {
            let v: BigUint = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        let big = u(u128::MAX);
        assert_eq!(big.to_string().parse::<BigUint>().unwrap(), big);
        assert!("12x".parse::<BigUint>().is_err());
        assert!("".parse::<BigUint>().is_err());
    }

    #[test]
    fn comparison_orders_by_value() {
        assert!(u(5) < u(6));
        assert!(u(1) << 64 > u(u64::MAX as u128));
        assert_eq!(u(42).cmp(&u(42)), Ordering::Equal);
        assert!(u(u64::MAX as u128) < u(u64::MAX as u128) + u(1));
        assert!(dense(4) < dense(5));
    }

    #[test]
    fn to_u64_bounds() {
        assert_eq!(u(u64::MAX as u128).to_u64(), Some(u64::MAX));
        assert_eq!((u(1) << 64).to_u64(), None);
        assert_eq!(u(0).to_u64(), Some(0));
    }

    #[test]
    fn representation_is_canonical() {
        // Everything ≤ u64::MAX stays inline; the first wider value spills.
        assert!(is_inline(&u(0)));
        assert!(is_inline(&u(u64::MAX as u128)));
        assert!(!is_inline(&(u(u64::MAX as u128) + u(1))));
        // from_limbs collapses short vectors (with or without trailing zeros).
        assert!(is_inline(&BigUint::from_limbs(vec![7, 0, 0, 0])));
        assert!(is_inline(&BigUint::from_limbs(vec![1, 2])));
        assert_eq!(BigUint::from_limbs(vec![1, 2]), u(1 | (2u128 << 32)));
        // Equal values have one representation, so equality/hashing is safe.
        assert_eq!(BigUint::from_limbs(vec![5]), u(5));
    }

    #[test]
    fn carries_across_the_spill_boundary() {
        let max = u(u64::MAX as u128);
        // Addition carries out of the inline width and spills to the heap…
        let spilled = &max + &u(1);
        assert!(!is_inline(&spilled));
        assert_eq!(spilled, u(1u128 << 64));
        assert_eq!(spilled.bits(), 65);
        // …and subtraction borrows back down and collapses to inline.
        let back = &spilled - &u(1);
        assert!(is_inline(&back));
        assert_eq!(back, max);
        // A long borrow chain across many limbs: 2^192 − 1.
        let big = u(1) << 192;
        let borrowed = &big - &u(1);
        assert_eq!(borrowed, dense(6));
        assert_eq!(&borrowed + &u(1), big);
        // Multiplication straddling the boundary: (2^32)·(2^32) spills…
        assert!(!is_inline(&(u(1 << 32) * u(1u128 << 32))));
        // …while u64-sized products stay inline.
        assert!(is_inline(&(u(1 << 32) * u(1 << 31))));
    }

    #[test]
    fn zero_and_one_fast_paths() {
        let big = dense(40);
        assert!((&big * &u(0)).is_zero());
        assert!((&u(0) * &big).is_zero());
        assert_eq!(&big * &u(1), big);
        assert_eq!(&big + &u(0), big);
        assert_eq!(&big - &u(0), big);
        assert_eq!(&big - &big, u(0));
        assert_eq!(u(0).gcd(&big), big);
        assert_eq!(big.gcd(&u(0)), big);
        assert_eq!(big.gcd(&u(1)), u(1));
        assert!(u(0).is_zero() && BigUint::one() == u(1));
    }

    #[test]
    fn karatsuba_threshold_boundary_matches_schoolbook() {
        // Operand sizes straddling the dispatch threshold on either side.
        for limbs_a in [
            KARATSUBA_THRESHOLD - 1,
            KARATSUBA_THRESHOLD,
            KARATSUBA_THRESHOLD + 1,
        ] {
            for limbs_b in [
                KARATSUBA_THRESHOLD - 1,
                KARATSUBA_THRESHOLD,
                KARATSUBA_THRESHOLD + 1,
            ] {
                let a = dense(limbs_a);
                let b = dense(limbs_b) - u(41);
                assert_eq!(&a * &b, a.mul_schoolbook(&b), "{limbs_a}×{limbs_b} limbs");
            }
        }
        // Well above the threshold, including unbalanced shapes.
        let a = dense(130);
        let b = dense(67);
        assert_eq!(&a * &b, a.mul_schoolbook(&b));
        assert_eq!(&a * &a, a.mul_schoolbook(&a));
    }

    #[test]
    fn knuth_d_division_with_heap_divisors() {
        // Divisor just past the inline width (3 limbs) exercises the D3
        // estimate with the smallest legal n.
        let d = u(1u128 << 64) + u(12345);
        let a = dense(20);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
        // The D6 add-back path needs top limbs that overestimate qhat.
        let d = BigUint::from_limbs(vec![0, 0, 1, u32::MAX, u32::MAX]);
        let a = BigUint::from_limbs(vec![u32::MAX; 11]);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
    }

    #[test]
    fn gcd_matches_common_factors() {
        // gcd over mixed representations: g = 2^70·3^5.
        let g = (u(1) << 70) * u(243);
        let a = &g * &u(35);
        let b = &g * &u(22);
        assert_eq!(a.gcd(&b), g);
        // Machine-word tail.
        assert_eq!(u(48).gcd(&u(84)), u(12));
        assert_eq!(dense(9).gcd(&u(1)), u(1));
        // Huge coprime pair.
        let p = (u(1) << 127) - u(1); // Mersenne prime
        assert_eq!(p.gcd(&(u(1) << 300)), u(1));
    }

    /// Limb vectors biased toward 0 and MAX limbs (carry/borrow edges).
    fn limb_vec_strategy(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::vec((0u32..u32::MAX, 0u32..8), 0..max_len).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(v, tag)| match tag {
                    0 => 0,
                    1 => u32::MAX,
                    _ => v,
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// The dispatching product (inline fast path, schoolbook, Karatsuba)
        /// agrees with the schoolbook reference on random operands whose
        /// sizes straddle both the spill boundary and the Karatsuba
        /// threshold.
        #[test]
        fn differential_mul_vs_schoolbook(
            a in limb_vec_strategy(70),
            b in limb_vec_strategy(70),
        ) {
            let a = BigUint::from_limbs(a);
            let b = BigUint::from_limbs(b);
            prop_assert_eq!(&a * &b, a.mul_schoolbook(&b));
        }

        /// `a = q·d + r` with `r < d`, across all representation combinations.
        #[test]
        fn differential_div_rem_invariant(
            a in limb_vec_strategy(24),
            d in limb_vec_strategy(10),
        ) {
            let a = BigUint::from_limbs(a);
            let d = BigUint::from_limbs(d);
            if !d.is_zero() {
                let (q, r) = a.div_rem(&d);
                prop_assert!(r < d);
                prop_assert_eq!(&q * &d + &r, a);
            }
        }

        /// Addition and subtraction are inverses and match u128 on small
        /// values (the inline fast path against the limb path).
        #[test]
        fn add_sub_round_trip_random(
            a in limb_vec_strategy(12),
            b in limb_vec_strategy(12),
        ) {
            let a = BigUint::from_limbs(a);
            let b = BigUint::from_limbs(b);
            let sum = &a + &b;
            prop_assert_eq!(&sum - &a, b.clone());
            prop_assert_eq!(&sum - &b, a.clone());
            prop_assert!(sum >= a && sum >= b);
        }

        /// The gcd divides both operands and the cofactors are coprime.
        #[test]
        fn gcd_divides_both(
            a in limb_vec_strategy(10),
            b in limb_vec_strategy(10),
        ) {
            let a = BigUint::from_limbs(a);
            let b = BigUint::from_limbs(b);
            let g = a.gcd(&b);
            if g.is_zero() {
                prop_assert!(a.is_zero() && b.is_zero());
            } else {
                let (qa, ra) = a.div_rem(&g);
                let (qb, rb) = b.div_rem(&g);
                prop_assert!(ra.is_zero() && rb.is_zero());
                prop_assert_eq!(qa.gcd(&qb), BigUint::one());
            }
        }

        /// Decimal formatting and parsing are inverses.
        #[test]
        fn display_parse_round_trip_random(a in limb_vec_strategy(8)) {
            let a = BigUint::from_limbs(a);
            prop_assert_eq!(a.to_string().parse::<BigUint>().unwrap(), a);
        }
    }
}
