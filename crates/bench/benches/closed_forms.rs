//! E10 — the introduction / §2 closed-form identities, evaluated at large
//! domain sizes (the closed forms are the cheapest path and set the baseline
//! the lifted algorithms are compared against).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::core::closed_form;
use wfomc::prelude::*;
use wfomc_bench::standard_weights;

fn bench_closed_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_forms");
    let weights = standard_weights();
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("forall-exists-edge", n), &n, |b, &n| {
            b.iter(|| closed_form::fomc_forall_exists_edge(n))
        });
        group.bench_with_input(BenchmarkId::new("table1-fomc", n), &n, |b, &n| {
            b.iter(|| closed_form::fomc_table1(n))
        });
        group.bench_with_input(BenchmarkId::new("table1-wfomc", n), &n, |b, &n| {
            b.iter(|| closed_form::wfomc_table1(n, &weights))
        });
        group.bench_with_input(BenchmarkId::new("exists-unary", n), &n, |b, &n| {
            b.iter(|| closed_form::wfomc_exists_unary(n, &weight_int(3), &weight_int(2)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_closed_forms
}
criterion_main!(benches);
