//! # wfomc-logic
//!
//! First-order logic toolkit underlying the symmetric Weighted First-Order
//! Model Counting (WFOMC) library, a reproduction of
//! *Symmetric Weighted First-Order Model Counting* (Beame, Van den Broeck,
//! Gribkoff, Suciu — PODS 2015).
//!
//! This crate provides:
//!
//! * [`term::Term`], [`term::Variable`], [`term::Constant`] — the term language;
//! * [`vocabulary::Predicate`] and [`vocabulary::Vocabulary`] — fixed relational
//!   vocabularies σ = (R₁, …, Rₘ) as used throughout the paper;
//! * [`syntax::Formula`] — first-order formulas over a vocabulary with equality;
//! * [`weights::Weights`] — symmetric weight functions (w, w̄) over a vocabulary,
//!   with exact arbitrary-precision rational arithmetic (negative weights are
//!   first-class citizens: Lemma 3.3 of the paper requires w̄ = −1);
//! * [`algebra`] — the generic evaluation algebra: a commutative-ring trait
//!   ([`algebra::Algebra`]) the whole evaluation pipeline is parameterized
//!   over, with exact-rational ([`algebra::Exact`]), log-space float
//!   ([`algebra::LogF64`]) and polynomial ([`algebra::Poly`], over
//!   [`poly::Polynomial`]) instances;
//! * [`transform`] — simplification, negation normal form, prenex normal form,
//!   substitution, variable counting (the FOᵏ fragments), renaming;
//! * [`clause`] — universally quantified clauses and clausal sentences;
//! * [`cq`] — conjunctive queries without self-joins (the Figure 1 landscape);
//! * [`parser`] — a small text syntax for formulas, used by examples and tests;
//! * [`catalog`] — programmatic constructors for every sentence that appears in
//!   the paper (Table 1, Table 2, QS4, Example 1.1, the Figure 1 queries, …).
//!
//! The crate is purely syntactic: it knows nothing about domains, structures or
//! counting. Grounding lives in `wfomc-ground`, lifted algorithms in
//! `wfomc-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod builders;
pub mod catalog;
pub mod clause;
pub mod cq;
pub mod parser;
pub mod poly;
pub mod printer;
pub mod snap;
pub mod syntax;
pub mod term;
pub mod transform;
pub mod vocabulary;
pub mod weights;

pub use algebra::{Algebra, AlgebraWeights, ElemWeights, Exact, LogF64, LogWeight, Poly, VarPairs};
pub use poly::Polynomial;
pub use syntax::{Atom, Formula};
pub use term::{Constant, Term, Variable};
pub use vocabulary::{Predicate, Vocabulary};
pub use weights::{PowCache, Weight, Weights};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::algebra::{
        Algebra, AlgebraWeights, ElemWeights, Exact, LogF64, LogWeight, Poly, VarPairs,
    };
    pub use crate::builders::*;
    pub use crate::clause::{ClausalSentence, Clause, Literal};
    pub use crate::cq::ConjunctiveQuery;
    pub use crate::poly::Polynomial;
    pub use crate::syntax::{Atom, Formula};
    pub use crate::term::{Constant, Term, Variable};
    pub use crate::vocabulary::{Predicate, Vocabulary};
    pub use crate::weights::{PowCache, Weight, Weights};
}
