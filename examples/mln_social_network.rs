//! A Markov Logic Network over a synthetic social network: the classic
//! smokers-and-friends model, solved exactly through the paper's Example 1.2
//! reduction to symmetric WFOMC and the lifted FO² algorithm.
//!
//! Run with `cargo run --release --example mln_social_network`.

use wfomc::mln::ground_semantics;
use wfomc::prelude::*;

fn main() {
    // Soft constraints:
    //   (3,  Smokes(x))                                  — smoking is common,
    //   (2,  Smokes(x) ∧ Friends(x,y) ⇒ Smokes(y))       — smoking spreads,
    //   (1/2, Friends(x,y))                              — friendships are sparse.
    // Hard constraint: nobody is their own friend.
    let mut mln = MarkovLogicNetwork::new();
    mln.add_soft(weight_int(3), atom("Smokes", &["x"]));
    mln.add_soft(
        weight_int(2),
        implies(
            and(vec![atom("Smokes", &["x"]), atom("Friends", &["x", "y"])]),
            atom("Smokes", &["y"]),
        ),
    );
    mln.add_soft(weight_ratio(1, 2), atom("Friends", &["x", "y"]));
    mln.add_hard(not(atom("Friends", &["x", "x"])));

    let engine = MlnEngine::new(&mln).expect("reduction applies");

    println!("== Smokers & friends MLN ==");
    println!(
        "reduced hard sentence: {}",
        engine.reduction().hard_sentence
    );
    println!();

    // Exact partition function: lifted (reduction + FO²) vs the textbook
    // ground semantics on small domains.
    println!(
        "{:>4} {:>34} {:>16}",
        "n", "partition function Z(n)", "checked vs ground"
    );
    for n in 1..=4 {
        let z = engine.partition_function(n).expect("exact inference");
        let check = if n <= 2 {
            let brute = ground_semantics::partition_function_brute(&mln, n);
            if brute == z {
                "ok"
            } else {
                "MISMATCH"
            }
        } else {
            "(too large to enumerate)"
        };
        println!("{n:>4} {:>34} {:>16}", z, check);
    }

    // Marginal-style queries (closed sentences), answered exactly.
    let queries = vec![
        ("somebody smokes", exists(["x"], atom("Smokes", &["x"]))),
        ("everybody smokes", forall(["x"], atom("Smokes", &["x"]))),
        (
            "there is a friendship between a smoker and a non-smoker",
            exists(
                ["x", "y"],
                and(vec![
                    atom("Friends", &["x", "y"]),
                    atom("Smokes", &["x"]),
                    not(atom("Smokes", &["y"])),
                ]),
            ),
        ),
    ];

    println!();
    for (label, query) in &queries {
        println!("Pr[{label}]:");
        for n in 1..=5 {
            let (p, num_method, _) = engine
                .probability_with_methods(query, n)
                .expect("exact inference");
            let approx = rational_to_f64(&p);
            println!("  n = {n}: {approx:.6}  (exact {p}, via {num_method})");
        }
    }

    // Serving-speed inference: the same cached plans evaluated in the
    // log-space float algebra instead of exact rationals. At n = 40 the
    // exact partition function has thousands of digits; the log-space
    // evaluation stays one machine word per value.
    println!();
    println!("== LogF64 algebra: large-n serving ==");
    let (_, somebody_smokes) = &queries[0];
    println!("{:>4} {:>18} {:>22}", "n", "ln Z(n)", "Pr[somebody smokes]");
    for n in [10usize, 20, 40] {
        let z = engine
            .partition_function_in(n, &LogF64)
            .expect("log-space inference");
        let p = engine
            .probability_in(somebody_smokes, n, &LogF64)
            .expect("log-space inference");
        println!("{n:>4} {:>18.3} {:>22.9}", z.ln_abs(), p.to_f64());
    }
}

fn rational_to_f64(w: &Weight) -> f64 {
    let numer: f64 = w.numer().to_string().parse().unwrap_or(f64::NAN);
    let denom: f64 = w.denom().to_string().parse().unwrap_or(f64::NAN);
    numer / denom
}
