//! The hypergraph data structure.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a node (a query variable).
pub type NodeId = usize;

/// Index of a hyperedge (a query atom).
pub type EdgeId = usize;

/// A labeled hypergraph.
///
/// Nodes are dense indices `0..num_nodes` with optional string labels;
/// hyperedges are labeled sets of nodes. Both duplicates of labels and
/// duplicate edges (same node set) are allowed — the acyclicity reductions
/// deal with them.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Hypergraph {
    node_labels: Vec<String>,
    edges: Vec<Edge>,
}

/// A hyperedge: a label and the set of incident nodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Human-readable label (typically the relation name).
    pub label: String,
    /// The incident nodes.
    pub nodes: BTreeSet<NodeId>,
}

impl Hypergraph {
    /// Creates an empty hypergraph.
    pub fn new() -> Self {
        Hypergraph::default()
    }

    /// Adds a node with a label, returning its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        self.node_labels.push(label.into());
        self.node_labels.len() - 1
    }

    /// Adds `count` anonymous nodes, returning the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = self.node_labels.len();
        for i in 0..count {
            self.node_labels.push(format!("v{}", first + i));
        }
        first
    }

    /// Adds a hyperedge over the given nodes, returning its id.
    ///
    /// # Panics
    /// Panics if a node id is out of range.
    pub fn add_edge(
        &mut self,
        label: impl Into<String>,
        nodes: impl IntoIterator<Item = NodeId>,
    ) -> EdgeId {
        let nodes: BTreeSet<NodeId> = nodes.into_iter().collect();
        for &n in &nodes {
            assert!(n < self.node_labels.len(), "node {n} does not exist");
        }
        self.edges.push(Edge {
            label: label.into(),
            nodes,
        });
        self.edges.len() - 1
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The label of a node.
    pub fn node_label(&self, n: NodeId) -> &str {
        &self.node_labels[n]
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The node sets of all edges (useful for the acyclicity reductions,
    /// which only care about the incidence structure).
    pub fn edge_sets(&self) -> Vec<BTreeSet<NodeId>> {
        self.edges.iter().map(|e| e.nodes.clone()).collect()
    }

    /// The edges incident to a node.
    pub fn edges_of(&self, n: NodeId) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.nodes.contains(&n))
            .map(|(i, _)| i)
            .collect()
    }

    /// All nodes that occur in at least one edge.
    pub fn covered_nodes(&self) -> BTreeSet<NodeId> {
        self.edges
            .iter()
            .flat_map(|e| e.nodes.iter().copied())
            .collect()
    }

    /// The sub-hypergraph induced by a subset of edges (nodes are kept as-is).
    pub fn edge_subgraph(&self, edge_ids: &[EdgeId]) -> Hypergraph {
        Hypergraph {
            node_labels: self.node_labels.clone(),
            edges: edge_ids.iter().map(|&i| self.edges[i].clone()).collect(),
        }
    }

    /// Builds a hypergraph from named edges over named nodes, creating nodes
    /// on first use. Convenient for tests and for converting conjunctive
    /// queries.
    pub fn from_named_edges<'a, I, J>(edges: I) -> Hypergraph
    where
        I: IntoIterator<Item = (&'a str, J)>,
        J: IntoIterator<Item = &'a str>,
    {
        let mut hg = Hypergraph::new();
        let mut names: Vec<String> = Vec::new();
        for (label, nodes) in edges {
            let ids: Vec<NodeId> = nodes
                .into_iter()
                .map(|name| {
                    if let Some(pos) = names.iter().position(|n| n == name) {
                        pos
                    } else {
                        names.push(name.to_string());
                        hg.add_node(name)
                    }
                })
                .collect();
            hg.add_edge(label, ids);
        }
        hg
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", e.label)?;
            for (j, n) in e.nodes.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.node_labels[*n])?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut hg = Hypergraph::new();
        let x = hg.add_node("x");
        let y = hg.add_node("y");
        let z = hg.add_node("z");
        let e0 = hg.add_edge("R", [x, y]);
        let e1 = hg.add_edge("S", [y, z]);
        assert_eq!(hg.num_nodes(), 3);
        assert_eq!(hg.num_edges(), 2);
        assert_eq!(hg.edges_of(y), vec![e0, e1]);
        assert_eq!(hg.edges_of(x), vec![e0]);
        assert_eq!(hg.covered_nodes().len(), 3);
        assert_eq!(hg.node_label(z), "z");
    }

    #[test]
    fn from_named_edges_reuses_nodes() {
        let hg = Hypergraph::from_named_edges([("R", vec!["x", "y"]), ("S", vec!["y", "z"])]);
        assert_eq!(hg.num_nodes(), 3);
        assert_eq!(hg.num_edges(), 2);
        assert_eq!(hg.to_string(), "R(x,y), S(y,z)");
    }

    #[test]
    fn edge_subgraph_keeps_selected_edges() {
        let hg = Hypergraph::from_named_edges([
            ("R", vec!["x", "y"]),
            ("S", vec!["y", "z"]),
            ("T", vec!["z", "x"]),
        ]);
        let sub = hg.edge_subgraph(&[0, 2]);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edges()[1].label, "T");
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn adding_edge_with_unknown_node_panics() {
        let mut hg = Hypergraph::new();
        hg.add_edge("R", [5]);
    }
}
