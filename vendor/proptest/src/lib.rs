//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range / tuple /
//! `any::<T>()` strategies, [`collection::vec`] and [`collection::btree_set`],
//! [`test_runner::ProptestConfig`], and the [`proptest!`], [`prop_assert!`]
//! and [`prop_assert_eq!`] macros.
//!
//! Semantics: each `proptest!` test replays the seeds stored in its
//! `proptest-regressions/<test>.txt` file (if any), then runs `config.cases`
//! iterations of seeded random generation — one fresh `u64` seed per case,
//! drawn deterministically from the test name, so runs are reproducible.
//! `config.cases` defaults to 256 and honors the `PROPTEST_CASES`
//! environment variable. A failing case persists its seed to the regression
//! file (commit it — see [`regressions`]) and re-raises the panic. There is
//! **no shrinking** — a failing case reports the generated values via the
//! panic message only.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod regressions;
pub mod strategy;
pub mod test_runner;

/// The customary glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property-based tests.
///
/// Supports an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                // The regression file lives under the crate being tested
                // (env! and module_path! resolve at the expansion site).
                let __regression_path = $crate::regressions::regression_file(
                    env!("CARGO_MANIFEST_DIR"),
                    module_path!(),
                    stringify!($name),
                );
                let __stored = $crate::regressions::load_seeds(&__regression_path);
                let mut __seed_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..(__stored.len() + __config.cases as usize) {
                    // Stored counterexample seeds replay before fresh cases.
                    let __seed = if __case < __stored.len() {
                        __stored[__case]
                    } else {
                        __seed_rng.next_u64()
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                            $(let $arg =
                                $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                            $body
                        }),
                    );
                    if let Err(__panic) = __outcome {
                        $crate::regressions::save_seed(&__regression_path, __seed);
                        eprintln!(
                            "proptest: test {} failed with seed {} (persisted to {})",
                            stringify!($name),
                            __seed,
                            __regression_path.display(),
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        let strat = crate::collection::vec(0usize..5, 2..6);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_strategy_bounds_size() {
        let mut rng = crate::test_runner::TestRng::for_test("set");
        let strat = crate::collection::btree_set(0usize..5, 0..4);
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }

        #[test]
        fn prop_map_applies(v in crate::collection::vec(0u64..10, 0..5).prop_map(|v| v.len())) {
            prop_assert!(v < 5);
        }

        #[test]
        fn just_returns_value(k in Just(41usize)) {
            prop_assert_eq!(k + 1, 42);
            prop_assert_ne!(k, 0);
        }
    }
}
