//! # wfomc-prop
//!
//! Propositional logic and exact **weighted model counting** (WMC) backends.
//!
//! §2 of the paper defines Weighted First-Order Model Counting through the
//! weighted model count of the *lineage* — a propositional formula over the
//! ground tuples. This crate provides that propositional layer:
//!
//! * [`formula::PropFormula`] — propositional formulas over integer-indexed
//!   variables;
//! * [`cnf::Cnf`] — clausal form, with a count-preserving Tseitin transform
//!   ([`tseitin`]);
//! * [`weights::VarWeights`] — per-variable weight pairs `(w, w̄)`, exactly the
//!   `WMC(F, w, w̄)` setting of Eq. (2)–(3) in the paper (negative weights are
//!   allowed);
//! * [`counter`] — two exact counters: a brute-force enumerator and a weighted
//!   DPLL with unit propagation, connected-component decomposition and
//!   component caching.
//!
//! The two counters are cross-checked against each other by unit tests and by
//! property-based tests, and are benchmarked against each other in the
//! `wmc_backends` ablation bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod counter;
pub mod formula;
pub mod tseitin;
pub mod weights;

pub use cnf::{Cnf, Lit};
pub use counter::{wmc, wmc_formula, WmcBackend};
pub use formula::PropFormula;
pub use weights::VarWeights;
