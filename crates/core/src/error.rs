//! Error types for the lifted algorithms.

use std::fmt;

/// Why a lifted algorithm declined (or failed) to handle an input.
///
/// "Declined" is the common case: the paper's hardness results mean no lifted
/// algorithm can cover all sentences, so the [`crate::solver::Solver`] treats
/// most of these as a signal to fall back to the grounded pipeline rather than
/// as a hard failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LiftError {
    /// The sentence uses more distinct variables than the algorithm supports
    /// (e.g. an FO³ sentence handed to the FO² algorithm).
    TooManyVariables {
        /// Number of distinct variables found.
        found: usize,
        /// Maximum supported.
        max: usize,
    },
    /// A predicate has higher arity than the algorithm supports.
    ArityTooLarge {
        /// The offending predicate name.
        predicate: String,
        /// Its arity.
        arity: usize,
        /// Maximum supported arity.
        max: usize,
    },
    /// The input is not a sentence (it has free variables).
    NotASentence,
    /// The formula could not be interpreted as a conjunctive query.
    NotAConjunctiveQuery,
    /// The conjunctive query has a self-join, which Theorem 3.6 excludes.
    HasSelfJoin,
    /// The query hypergraph is not γ-acyclic, so Fagin's reduction got stuck.
    NotGammaAcyclic,
    /// A weight pair has `w + w̄ = 0`, so it admits no probability
    /// normalization (required by the probability-space CQ algorithm).
    NoProbabilityNormalization {
        /// The offending predicate.
        predicate: String,
    },
    /// The sentence does not match the special-case algorithm it was handed to
    /// (e.g. a non-QS4 sentence given to the QS4 dynamic program).
    PatternMismatch {
        /// Description of the expected pattern.
        expected: String,
    },
    /// The normalization produced something the cell algorithm cannot consume;
    /// this indicates a bug and carries a description.
    Internal(String),
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::TooManyVariables { found, max } => write!(
                f,
                "sentence uses {found} distinct variables but the algorithm supports at most {max}"
            ),
            LiftError::ArityTooLarge {
                predicate,
                arity,
                max,
            } => write!(
                f,
                "predicate {predicate} has arity {arity}, above the supported maximum {max}"
            ),
            LiftError::NotASentence => write!(f, "the formula has free variables"),
            LiftError::NotAConjunctiveQuery => {
                write!(f, "the formula is not a conjunctive query")
            }
            LiftError::HasSelfJoin => {
                write!(f, "the conjunctive query has a self-join")
            }
            LiftError::NotGammaAcyclic => {
                write!(f, "the query hypergraph is not γ-acyclic")
            }
            LiftError::NoProbabilityNormalization { predicate } => write!(
                f,
                "predicate {predicate} has w + w̄ = 0, so tuple probabilities are undefined"
            ),
            LiftError::PatternMismatch { expected } => {
                write!(
                    f,
                    "the sentence does not match the expected pattern: {expected}"
                )
            }
            LiftError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for LiftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LiftError::TooManyVariables { found: 3, max: 2 };
        assert!(e.to_string().contains('3'));
        let e = LiftError::ArityTooLarge {
            predicate: "R".into(),
            arity: 4,
            max: 2,
        };
        assert!(e.to_string().contains("R"));
        assert!(LiftError::NotGammaAcyclic.to_string().contains("γ-acyclic"));
        assert!(LiftError::Internal("oops".into())
            .to_string()
            .contains("oops"));
    }
}
