//! A minimal work-stealing chunked deque for scoped-thread fan-outs.
//!
//! The build environment has no registry access, so this is a std-only
//! stand-in for the usual `crossbeam-deque` shape, scoped to what the WFOMC
//! engines need: a fixed set of workers draining a finite set of tasks whose
//! costs vary wildly (DFS subtrees, Shannon branches). Each worker owns a
//! [`Mutex`]-protected queue plus a lock-free local chunk buffer; when both
//! run dry it steals *half* of a victim's queue in one lock acquisition, so
//! imbalance halves per steal and lock traffic stays O(steals), not O(tasks).
//!
//! No `unsafe`, no spinning: an empty pool means the work is genuinely done
//! (workers never block waiting for more), which matches the seed-then-drain
//! usage of the cell-sum and prepare fan-outs. [`Pool::steals`] exposes a
//! lifetime steal counter for observability.
//!
//! ```
//! use stealer::Pool;
//!
//! let pool = Pool::new(2);
//! pool.seed(0..100u32);
//! let total: u32 = std::thread::scope(|scope| {
//!     let handles: Vec<_> = (0..2)
//!         .map(|t| {
//!             let mut worker = pool.worker(t);
//!             scope.spawn(move || {
//!                 let mut sum = 0;
//!                 while let Some(item) = worker.pop() {
//!                     sum += item;
//!                 }
//!                 sum
//!             })
//!         })
//!         .collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).sum()
//! });
//! assert_eq!(total, (0..100).sum());
//! ```

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many tasks a worker moves from its shared queue into its private
/// buffer per lock acquisition. Small enough that most of a queue stays
/// visible to thieves, large enough to amortize the lock.
const CHUNK: usize = 4;

/// A fixed-width pool of work-stealing queues. Seed it with tasks, hand one
/// [`Worker`] to each thread, and drain with [`Worker::pop`] until `None`.
#[derive(Debug)]
pub struct Pool<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    steals: AtomicU64,
}

impl<T> Pool<T> {
    /// Creates a pool with `workers` queues (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Pool {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Distributes `items` round-robin across the worker queues. May be
    /// called repeatedly; new items land behind existing ones.
    pub fn seed<I: IntoIterator<Item = T>>(&self, items: I) {
        for (i, item) in items.into_iter().enumerate() {
            self.queues[i % self.queues.len()]
                .lock()
                .expect("stealer queue poisoned")
                .push_back(item);
        }
    }

    /// The worker handle for queue `index`.
    ///
    /// # Panics
    /// Panics if `index >= self.workers()`.
    pub fn worker(&self, index: usize) -> Worker<'_, T> {
        assert!(index < self.queues.len(), "worker index out of range");
        Worker {
            pool: self,
            index,
            local: VecDeque::new(),
        }
    }

    /// Lifetime count of successful steals (one per victim-queue transfer,
    /// regardless of how many tasks moved).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

/// One thread's handle into a [`Pool`]: a private chunk buffer plus the
/// stealing protocol. Not `Sync` — each worker belongs to exactly one thread.
#[derive(Debug)]
pub struct Worker<'a, T> {
    pool: &'a Pool<T>,
    index: usize,
    local: VecDeque<T>,
}

impl<T> Worker<'_, T> {
    /// This worker's queue index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Pushes a task produced mid-drain. It lands on the worker's *shared*
    /// queue, so idle workers can steal it immediately.
    pub fn push(&mut self, item: T) {
        self.pool.queues[self.index]
            .lock()
            .expect("stealer queue poisoned")
            .push_back(item);
    }

    /// The next task: from the private buffer, then a chunk from the
    /// worker's own queue, then half of the first non-empty victim queue.
    /// `None` means every queue in the pool was empty at scan time — with
    /// seed-then-drain usage, that the work is done.
    pub fn pop(&mut self) -> Option<T> {
        loop {
            if let Some(item) = self.local.pop_front() {
                return Some(item);
            }
            if self.refill_from_own() {
                continue;
            }
            if self.steal() {
                continue;
            }
            return None;
        }
    }

    /// Moves up to [`CHUNK`] tasks from the shared queue into the private
    /// buffer. Returns whether anything moved.
    fn refill_from_own(&mut self) -> bool {
        let mut queue = self.pool.queues[self.index]
            .lock()
            .expect("stealer queue poisoned");
        let take = queue.len().min(CHUNK);
        self.local.extend(queue.drain(..take));
        take > 0
    }

    /// Scans the other queues from `index + 1` and takes half (rounding up)
    /// of the first non-empty one. Returns whether anything was stolen.
    fn steal(&mut self) -> bool {
        let workers = self.pool.queues.len();
        for offset in 1..workers {
            let victim = (self.index + offset) % workers;
            let mut queue = self.pool.queues[victim]
                .lock()
                .expect("stealer queue poisoned");
            let len = queue.len();
            if len == 0 {
                continue;
            }
            let take = len.div_ceil(2);
            self.local.extend(queue.drain(..take));
            drop(queue);
            self.pool.steals.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn drains_every_item_exactly_once() {
        let pool = Pool::new(3);
        pool.seed(0..1000u32);
        let seen = StdMutex::new(BTreeSet::new());
        std::thread::scope(|scope| {
            for t in 0..3 {
                let mut worker = pool.worker(t);
                let seen = &seen;
                scope.spawn(move || {
                    while let Some(item) = worker.pop() {
                        assert!(seen.lock().unwrap().insert(item), "duplicate {item}");
                    }
                });
            }
        });
        assert_eq!(seen.into_inner().unwrap().len(), 1000);
    }

    #[test]
    fn imbalanced_seed_is_stolen() {
        // Everything lands on queue 0; worker 1 must steal to see any work.
        let pool = Pool::new(2);
        pool.queues[0].lock().unwrap().extend(0..64u32);
        let mut worker = pool.worker(1);
        let mut got = 0;
        while worker.pop().is_some() {
            got += 1;
        }
        assert_eq!(got, 64);
        assert!(pool.steals() > 0, "draining a victim queue counts steals");
    }

    #[test]
    fn empty_pool_pops_none() {
        let pool: Pool<u8> = Pool::new(2);
        assert!(pool.worker(0).pop().is_none());
        assert_eq!(pool.steals(), 0);
    }

    #[test]
    fn pushed_items_are_drained_and_stealable() {
        let pool = Pool::new(2);
        let mut producer = pool.worker(0);
        for i in 0..10u32 {
            producer.push(i);
        }
        // A different worker can steal the pushed tasks.
        let mut thief = pool.worker(1);
        let mut got = Vec::new();
        while let Some(item) = thief.pop() {
            got.push(item);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn seed_round_robins_across_queues() {
        let pool = Pool::new(4);
        pool.seed(0..8u32);
        for q in &pool.queues {
            assert_eq!(q.lock().unwrap().len(), 2);
        }
    }

    #[test]
    fn single_worker_pool_still_works() {
        let pool = Pool::new(1);
        pool.seed(0..9u32);
        let mut worker = pool.worker(0);
        let mut sum = 0;
        while let Some(item) = worker.pop() {
            sum += item;
        }
        assert_eq!(sum, 36);
        assert_eq!(pool.steals(), 0);
    }
}
