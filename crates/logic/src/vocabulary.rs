//! Relational vocabularies σ = (R₁, …, Rₘ).
//!
//! The paper always works with a *fixed* vocabulary; the data complexity
//! results fix the formula too and only vary the domain size. A
//! [`Vocabulary`] is an ordered collection of [`Predicate`] symbols; order
//! matters for deterministic iteration (grounding, cell enumeration, …).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A relational predicate symbol with a fixed arity.
///
/// Predicates compare by name *and* arity, so `R/1` and `R/2` are distinct
/// symbols (this mirrors the paper's convention of writing `P/a`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    name: Arc<str>,
    arity: usize,
}

impl Predicate {
    /// Creates a predicate symbol.
    pub fn new(name: impl AsRef<str>, arity: usize) -> Self {
        Predicate {
            name: Arc::from(name.as_ref()),
            arity,
        }
    }

    /// The predicate's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The predicate's arity (number of argument positions).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of ground tuples of this predicate over a domain of size `n`,
    /// i.e. `n^arity`.
    pub fn num_ground_tuples(&self, n: usize) -> usize {
        n.checked_pow(self.arity as u32)
            .expect("ground tuple count overflows usize")
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// An ordered relational vocabulary.
///
/// Supports lookup by name, insertion-order iteration and set-like extension
/// (the paper's lemmas repeatedly *extend* a vocabulary with fresh symbols).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    predicates: Vec<Predicate>,
    by_name: BTreeMap<Arc<str>, usize>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vocabulary from `(name, arity)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: AsRef<str>,
    {
        let mut v = Vocabulary::new();
        for (name, arity) in pairs {
            v.add(Predicate::new(name, arity));
        }
        v
    }

    /// Adds a predicate; returns `false` (and leaves the vocabulary unchanged)
    /// if a predicate with the same name already exists.
    ///
    /// # Panics
    /// Panics if a predicate with the same name but a *different* arity is
    /// already present — that is almost certainly a bug in the caller.
    pub fn add(&mut self, p: Predicate) -> bool {
        if let Some(&idx) = self.by_name.get(p.name.as_ref() as &str) {
            let existing = &self.predicates[idx];
            assert_eq!(
                existing.arity(),
                p.arity(),
                "predicate {} registered with conflicting arities {} and {}",
                p.name(),
                existing.arity(),
                p.arity()
            );
            return false;
        }
        self.by_name.insert(p.name.clone(), self.predicates.len());
        self.predicates.push(p);
        true
    }

    /// Looks up a predicate by name.
    pub fn get(&self, name: &str) -> Option<&Predicate> {
        self.by_name.get(name).map(|&i| &self.predicates[i])
    }

    /// True if the vocabulary contains a predicate with this name.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// The predicates in insertion order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Iterates over the predicates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter()
    }

    /// Number of predicate symbols.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True if the vocabulary has no symbols.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The maximum arity over all predicates (0 for an empty vocabulary).
    pub fn max_arity(&self) -> usize {
        self.predicates.iter().map(|p| p.arity()).max().unwrap_or(0)
    }

    /// Total number of ground tuples `|Tup(n)| = Σᵢ n^{arity(Rᵢ)}` over a
    /// domain of size `n` (§2 of the paper).
    pub fn num_ground_tuples(&self, n: usize) -> usize {
        self.predicates.iter().map(|p| p.num_ground_tuples(n)).sum()
    }

    /// Returns a new vocabulary containing all predicates of `self` followed
    /// by those of `other` that are not already present.
    pub fn extended_with(&self, other: &Vocabulary) -> Vocabulary {
        let mut out = self.clone();
        for p in other.iter() {
            out.add(p.clone());
        }
        out
    }

    /// Generates a predicate name starting from `base` that is not yet used.
    pub fn fresh_name(&self, base: &str) -> String {
        if !self.contains(base) {
            return base.to_string();
        }
        for i in 0.. {
            let candidate = format!("{base}{i}");
            if !self.contains(&candidate) {
                return candidate;
            }
        }
        unreachable!()
    }

    /// Adds a fresh predicate with the given base name and arity, returning it.
    pub fn add_fresh(&mut self, base: &str, arity: usize) -> Predicate {
        let name = self.fresh_name(base);
        let p = Predicate::new(name, arity);
        self.add(p.clone());
        p
    }

    /// True if `self` is a sub-vocabulary of `other` (the paper's σ ⊆ σ′).
    pub fn is_subvocabulary_of(&self, other: &Vocabulary) -> bool {
        self.iter().all(|p| other.get(p.name()) == Some(p))
    }
}

impl fmt::Debug for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.predicates.iter()).finish()
    }
}

impl FromIterator<Predicate> for Vocabulary {
    fn from_iter<T: IntoIterator<Item = Predicate>>(iter: T) -> Self {
        let mut v = Vocabulary::new();
        for p in iter {
            v.add(p);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut v = Vocabulary::new();
        assert!(v.add(Predicate::new("R", 2)));
        assert!(v.add(Predicate::new("S", 1)));
        assert!(!v.add(Predicate::new("R", 2)), "duplicate add is a no-op");
        assert_eq!(v.len(), 2);
        assert_eq!(v.get("R").unwrap().arity(), 2);
        assert!(v.contains("S"));
        assert!(!v.contains("T"));
    }

    #[test]
    #[should_panic(expected = "conflicting arities")]
    fn conflicting_arity_panics() {
        let mut v = Vocabulary::new();
        v.add(Predicate::new("R", 2));
        v.add(Predicate::new("R", 3));
    }

    #[test]
    fn ground_tuple_counts() {
        let v = Vocabulary::from_pairs([("R", 2), ("S", 1), ("T", 0)]);
        // |Tup(3)| = 3² + 3¹ + 3⁰ = 9 + 3 + 1 = 13.
        assert_eq!(v.num_ground_tuples(3), 13);
        assert_eq!(v.max_arity(), 2);
    }

    #[test]
    fn fresh_names_do_not_collide() {
        let mut v = Vocabulary::from_pairs([("A", 1), ("A0", 1)]);
        let p = v.add_fresh("A", 2);
        assert_eq!(p.name(), "A1");
        assert!(v.contains("A1"));
    }

    #[test]
    fn extension_and_subvocabulary() {
        let base = Vocabulary::from_pairs([("R", 2)]);
        let extra = Vocabulary::from_pairs([("R", 2), ("S", 1)]);
        let ext = base.extended_with(&extra);
        assert_eq!(ext.len(), 2);
        assert!(base.is_subvocabulary_of(&ext));
        assert!(!ext.is_subvocabulary_of(&base));
    }

    #[test]
    fn insertion_order_is_preserved() {
        let v = Vocabulary::from_pairs([("Z", 1), ("A", 2), ("M", 0)]);
        let names: Vec<_> = v.iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names, vec!["Z", "A", "M"]);
    }
}
