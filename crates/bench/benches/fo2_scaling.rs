//! E6b — domain-size scaling of the prefix-sharing FO² cell-sum engine.
//!
//! Two regimes: `forall-exists` (3 cells, the dense sum is small) scales to
//! n = 100 directly, and `partition-12cell` (12 valid cells, hard constraints
//! zero most cross-cell pair entries) demonstrates that the engine's zero-term
//! subtree cutoffs — not raw enumeration speed — are what make a 12-cell
//! sentence with `C(111, 11) ≈ 4.7·10¹¹` compositions finish in seconds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfomc::core::fo2::wfomc_fo2;
use wfomc::prelude::*;
use wfomc_bench::{fo2_scaling_workload, standard_weights};

fn bench_fo2_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fo2_scaling");
    let weights = standard_weights();

    let forall_exists = catalog::forall_exists_edge();
    let voc = forall_exists.vocabulary();
    for n in [25usize, 50, 100] {
        group.bench_with_input(BenchmarkId::new("forall-exists", n), &n, |b, &n| {
            b.iter(|| wfomc_fo2(&forall_exists, &voc, n, &weights).unwrap())
        });
    }

    let partition = fo2_scaling_workload();
    let voc = partition.vocabulary();
    for n in [25usize, 50, 100] {
        group.bench_with_input(BenchmarkId::new("partition-12cell", n), &n, |b, &n| {
            b.iter(|| wfomc_fo2(&partition, &voc, n, &weights).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(2)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(5));
    targets = bench_fo2_scaling
}
criterion_main!(benches);
