//! Exact combinatorics on big integers: factorials, binomials, multinomials
//! and compositions. These are the building blocks of every counting formula
//! in the paper (the Table 1 sums, the FO² cell decomposition, the QS4 dynamic
//! program, the γ-acyclic rule (b)).

use num_bigint::BigInt;
use num_rational::BigRational;
use num_traits::{One, Zero};

use wfomc_logic::weights::Weight;

/// `n!` as a big integer.
pub fn factorial(n: usize) -> BigInt {
    let mut acc = BigInt::one();
    for i in 2..=n {
        acc *= BigInt::from(i);
    }
    acc
}

/// Binomial coefficient `C(n, k)` as a big integer (0 when `k > n`).
pub fn binomial(n: usize, k: usize) -> BigInt {
    if k > n {
        return BigInt::zero();
    }
    let k = k.min(n - k);
    let mut num = BigInt::one();
    let mut den = BigInt::one();
    for i in 0..k {
        num *= BigInt::from(n - i);
        den *= BigInt::from(i + 1);
    }
    num / den
}

/// Multinomial coefficient `n! / (parts₁! · … · parts_k!)`.
///
/// # Panics
/// Panics if the parts do not sum to `n`.
pub fn multinomial(n: usize, parts: &[usize]) -> BigInt {
    assert_eq!(
        parts.iter().sum::<usize>(),
        n,
        "multinomial parts must sum to n"
    );
    let mut result = factorial(n);
    for &p in parts {
        result /= factorial(p);
    }
    result
}

/// Converts a big integer into a rational [`Weight`].
pub fn weight_from_bigint(i: BigInt) -> Weight {
    BigRational::from_integer(i)
}

/// Binomial coefficient as a [`Weight`].
pub fn binomial_weight(n: usize, k: usize) -> Weight {
    weight_from_bigint(binomial(n, k))
}

/// Multinomial coefficient as a [`Weight`].
pub fn multinomial_weight(n: usize, parts: &[usize]) -> Weight {
    weight_from_bigint(multinomial(n, parts))
}

/// Iterator over all compositions of `n` into exactly `k` non-negative parts,
/// i.e. all vectors `(n₁, …, n_k)` with `Σ nᵢ = n`. There are `C(n+k−1, k−1)`
/// of them. For `k = 0` the iterator yields a single empty composition when
/// `n = 0` and nothing otherwise.
pub fn compositions(n: usize, k: usize) -> Compositions {
    Compositions {
        n,
        k,
        current: None,
        done: false,
    }
}

/// See [`compositions`].
pub struct Compositions {
    n: usize,
    k: usize,
    current: Option<Vec<usize>>,
    done: bool,
}

impl Iterator for Compositions {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        match &mut self.current {
            None => {
                // First composition: everything in the last slot.
                if self.k == 0 {
                    self.done = true;
                    return if self.n == 0 { Some(vec![]) } else { None };
                }
                let mut first = vec![0; self.k];
                first[self.k - 1] = self.n;
                self.current = Some(first.clone());
                Some(first)
            }
            Some(current) => {
                // Find the rightmost position before the last with remaining
                // mass to shift.  Standard "stars and bars" successor: move one
                // unit from the tail into the first position that can take it.
                let k = self.k;
                // Find the last index i < k-1 such that the suffix after i has
                // positive sum; increment position i, reset the suffix.
                let mut i = k - 1;
                loop {
                    if i == 0 {
                        self.done = true;
                        return None;
                    }
                    i -= 1;
                    let suffix_sum: usize = current[i + 1..].iter().sum();
                    if suffix_sum > 0 {
                        break;
                    }
                }
                current[i] += 1;
                let used: usize = current[..=i].iter().sum();
                for slot in current[i + 1..].iter_mut() {
                    *slot = 0;
                }
                current[k - 1] = self.n - used;
                Some(current.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), BigInt::from(1));
        assert_eq!(factorial(5), BigInt::from(120));
        assert_eq!(factorial(20), BigInt::from(2432902008176640000u64));
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(5, 2), BigInt::from(10));
        assert_eq!(binomial(5, 0), BigInt::from(1));
        assert_eq!(binomial(5, 5), BigInt::from(1));
        assert_eq!(binomial(5, 6), BigInt::from(0));
        assert_eq!(
            binomial(50, 25),
            "126410606437752".parse::<BigInt>().unwrap()
        );
    }

    #[test]
    fn multinomials() {
        assert_eq!(multinomial(4, &[2, 2]), BigInt::from(6));
        assert_eq!(multinomial(6, &[1, 2, 3]), BigInt::from(60));
        assert_eq!(multinomial(0, &[0, 0]), BigInt::from(1));
    }

    #[test]
    #[should_panic(expected = "must sum to n")]
    fn multinomial_bad_parts_panics() {
        multinomial(4, &[1, 1]);
    }

    #[test]
    fn compositions_enumerate_stars_and_bars() {
        let all: Vec<_> = compositions(3, 2).collect();
        assert_eq!(all, vec![vec![0, 3], vec![1, 2], vec![2, 1], vec![3, 0]]);
        // C(n+k-1, k-1) counts.
        assert_eq!(compositions(5, 3).count(), 21);
        assert_eq!(compositions(0, 4).count(), 1);
        assert_eq!(compositions(4, 1).count(), 1);
        assert_eq!(compositions(0, 0).count(), 1);
        assert_eq!(compositions(2, 0).count(), 0);
    }

    #[test]
    fn compositions_each_sum_to_n() {
        for comp in compositions(6, 4) {
            assert_eq!(comp.iter().sum::<usize>(), 6);
            assert_eq!(comp.len(), 4);
        }
        // No duplicates.
        let all: Vec<_> = compositions(6, 4).collect();
        let dedup: std::collections::BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn weight_conversions() {
        assert_eq!(binomial_weight(4, 2), Weight::from_integer(6.into()));
        assert_eq!(
            multinomial_weight(3, &[1, 1, 1]),
            Weight::from_integer(6.into())
        );
    }
}
