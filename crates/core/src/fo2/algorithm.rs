//! The FO² counting algorithm: Shannon expansion over nullary predicates plus
//! the cell-decomposition sum of Appendix C, evaluated by the prefix-sharing
//! DFS engine in [`super::cellsum`].
//!
//! The entry points here are one-shot wrappers around
//! [`super::prepare::Fo2Prepared`], which holds the n-independent analysis;
//! repeated-query callers should prepare once through a
//! [`crate::plan::Plan`] instead.

use num_traits::{One, Zero};

use wfomc_ground::evaluate::evaluate;
use wfomc_ground::structure::Structure;
use wfomc_logic::syntax::Formula;
use wfomc_logic::vocabulary::Vocabulary;
use wfomc_logic::weights::{Weight, Weights};

use super::cellsum::CellSumStats;
use super::prepare::Fo2Prepared;
use crate::error::LiftError;

/// Statistics reported by [`wfomc_fo2`], used by the benchmarks and the
/// `repro` harness to explain the cost profile (number of cells, number of
/// compositions summed and pruned, number of Shannon branches).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Fo2Stats {
    /// Number of fresh predicates introduced by normalization.
    pub introduced_predicates: usize,
    /// Number of nullary predicates Shannon-expanded.
    pub shannon_branches: usize,
    /// Valid cells per Shannon branch (summed over branches).
    pub total_valid_cells: usize,
    /// Compositions whose term was evaluated, over all branches.
    pub compositions_summed: usize,
    /// Compositions skipped by the engine's zero-term subtree cutoffs.
    pub compositions_pruned: usize,
    /// All compositions over the branches' non-zero cells
    /// (`summed + pruned`, saturating).
    pub compositions_total: usize,
    /// Valid cells dropped before the sum because their weight is zero.
    pub zero_weight_cells_pruned: usize,
}

impl std::fmt::Display for Fo2Stats {
    /// The full human-readable cost profile. Earlier formatting only showed
    /// the composition prune ratio and silently dropped the cell-level
    /// accounting; this surfaces every collected field, in particular the
    /// zero-weight cells dropped before the sum ("zero cells" — there is no
    /// cell *merging* yet; when ROADMAP item 4 lands its `cells_merged`
    /// count joins this line).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells ({} zero cells dropped), {} summed + {} pruned of {} compositions, \
             {} Shannon branch(es), {} introduced predicate(s)",
            self.total_valid_cells,
            self.zero_weight_cells_pruned,
            self.compositions_summed,
            self.compositions_pruned,
            self.compositions_total,
            self.shannon_branches,
            self.introduced_predicates,
        )
    }
}

impl Fo2Stats {
    /// All counters saturate, so `summed + pruned = total` may degrade to an
    /// inequality only when every involved count has already pinned at
    /// `usize::MAX`.
    pub(crate) fn absorb_cell_sum(&mut self, s: &CellSumStats) {
        self.total_valid_cells = self.total_valid_cells.saturating_add(s.valid_cells);
        self.compositions_summed = self
            .compositions_summed
            .saturating_add(s.compositions_summed);
        self.compositions_pruned = self
            .compositions_pruned
            .saturating_add(s.compositions_pruned);
        self.compositions_total = self.compositions_total.saturating_add(s.compositions_total);
        self.zero_weight_cells_pruned = self
            .zero_weight_cells_pruned
            .saturating_add(s.zero_weight_cells_pruned);
    }
}

/// Computes the symmetric WFOMC of an FO² sentence in time polynomial in `n`.
///
/// `vocabulary` may contain predicates the sentence does not mention; they
/// contribute the usual `(w + w̄)^{n^arity}` factor. Fails (so the solver can
/// fall back to grounding) when the sentence is not FO², uses predicates of
/// arity > 2, or contains constants.
pub fn wfomc_fo2(
    sentence: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weights: &Weights,
) -> Result<Weight, LiftError> {
    wfomc_fo2_with_stats(sentence, vocabulary, n, weights).map(|(w, _)| w)
}

/// Like [`wfomc_fo2`] but also returns cost statistics.
pub fn wfomc_fo2_with_stats(
    sentence: &Formula,
    vocabulary: &Vocabulary,
    n: usize,
    weights: &Weights,
) -> Result<(Weight, Fo2Stats), LiftError> {
    if !sentence.is_sentence() {
        return Err(LiftError::NotASentence);
    }

    // n = 0: there is exactly one (empty) structure; its weight is 1. This
    // happens before the FO² analysis, so any sentence — even one outside
    // the fragment — is answered directly at n = 0.
    if n == 0 {
        let value = if evaluate(sentence, &Structure::empty(0)) {
            Weight::one()
        } else {
            Weight::zero()
        };
        return Ok((value, Fo2Stats::default()));
    }

    Ok(Fo2Prepared::prepare(sentence, vocabulary)?.count(n, weights, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfomc_ground::{brute_force_wfomc, wfomc as ground_wfomc};
    use wfomc_logic::builders::*;
    use wfomc_logic::catalog;
    use wfomc_logic::weights::{weight_int, weight_pow, weight_ratio};

    fn check_against_ground(f: &Formula, weights: &Weights, max_n: usize) {
        let voc = f.vocabulary();
        for n in 0..=max_n {
            let lifted = wfomc_fo2(f, &voc, n, weights).expect("FO² should apply");
            let grounded = ground_wfomc(f, &voc, n, weights);
            assert_eq!(lifted, grounded, "mismatch for {f} at n = {n}");
        }
    }

    #[test]
    fn forall_exists_edge_matches_closed_form() {
        let f = catalog::forall_exists_edge();
        let voc = f.vocabulary();
        // FOMC(Φ, n) = (2ⁿ − 1)ⁿ.
        for n in 0..=6 {
            let lifted = wfomc_fo2(&f, &voc, n, &Weights::ones()).unwrap();
            let expected = weight_pow(&weight_int((1i64 << n) - 1), n);
            assert_eq!(lifted, expected, "n = {n}");
        }
        // Weighted variant: ((w + w̄)ⁿ − w̄ⁿ)ⁿ.
        let w = Weights::from_ints([("R", 3, 2)]);
        for n in 0..=4 {
            let lifted = wfomc_fo2(&f, &voc, n, &w).unwrap();
            let expected = weight_pow(
                &(weight_pow(&weight_int(5), n) - weight_pow(&weight_int(2), n)),
                n,
            );
            assert_eq!(lifted, expected, "n = {n}");
        }
    }

    #[test]
    fn table1_sentence_matches_ground_truth() {
        let f = catalog::table1_sentence();
        check_against_ground(&f, &Weights::ones(), 3);
        check_against_ground(
            &f,
            &Weights::from_ints([("R", 2, 1), ("S", 1, 3), ("T", 5, 1)]),
            2,
        );
    }

    #[test]
    fn exists_unary_and_negative_weights() {
        let f = catalog::exists_unary();
        check_against_ground(&f, &Weights::from_ints([("S", 3, 2)]), 4);
        // Negative tuple weights are allowed (§2: the complexity is the same).
        check_against_ground(&f, &Weights::from_ints([("S", -1, 2)]), 3);
    }

    #[test]
    fn spouse_constraint_matches_ground_truth() {
        let f = catalog::spouse_constraint();
        check_against_ground(
            &f,
            &Weights::from_ints([("Spouse", 1, 1), ("Female", 2, 1), ("Male", 1, 3)]),
            2,
        );
    }

    #[test]
    fn nested_quantifiers_match_ground_truth() {
        // ∀x (R(x) ∨ ∃y S(x,y)) and ∃x ∀y R(x,y).
        let f = forall(
            ["x"],
            or(vec![
                atom("R", &["x"]),
                exists(["y"], atom("S", &["x", "y"])),
            ]),
        );
        check_against_ground(&f, &Weights::from_ints([("R", 1, 2), ("S", 3, 1)]), 3);

        let g = exists(["x"], forall(["y"], atom("R", &["x", "y"])));
        check_against_ground(&g, &Weights::ones(), 3);
        check_against_ground(&g, &Weights::from_ints([("R", 2, 3)]), 3);
    }

    #[test]
    fn equality_sentences_match_ground_truth() {
        // ∀x∀y (x = y ∨ R(x,y)): all off-diagonal tuples present.
        let f = forall(["x", "y"], or(vec![eq("x", "y"), atom("R", &["x", "y"])]));
        check_against_ground(&f, &Weights::from_ints([("R", 2, 3)]), 3);
        // ∃x∃y (x ≠ y ∧ Friends(x,y)).
        let g = exists(
            ["x", "y"],
            and(vec![neq("x", "y"), atom("Friends", &["x", "y"])]),
        );
        check_against_ground(&g, &Weights::from_ints([("Friends", 1, 2)]), 3);
    }

    #[test]
    fn reflexive_and_symmetric_axioms() {
        // ∀x R(x,x) ∧ ∀x∀y (R(x,y) → R(y,x)).
        let f = and(vec![
            forall(["x"], atom("R", &["x", "x"])),
            forall(
                ["x", "y"],
                implies(atom("R", &["x", "y"]), atom("R", &["y", "x"])),
            ),
        ]);
        check_against_ground(&f, &Weights::ones(), 3);
        check_against_ground(&f, &Weights::from_ints([("R", 2, 1)]), 3);
    }

    #[test]
    fn probability_weights_are_exact() {
        let f = catalog::smokers_constraint();
        let voc = f.vocabulary();
        let mut w = Weights::ones();
        w.set_probability("Smokes", weight_ratio(1, 3));
        w.set_probability("Friends", weight_ratio(1, 2));
        for n in 1..=2 {
            let lifted = wfomc_fo2(&f, &voc, n, &w).unwrap();
            let grounded = brute_force_wfomc(&f, &voc, n, &w);
            assert_eq!(lifted, grounded);
        }
    }

    #[test]
    fn extra_vocabulary_predicates_multiply_through() {
        let f = catalog::exists_unary();
        let voc = Vocabulary::from_pairs([("S", 1), ("Extra", 2)]);
        let w = Weights::from_ints([("S", 1, 1), ("Extra", 1, 1)]);
        let n = 2;
        let lifted = wfomc_fo2(&f, &voc, n, &w).unwrap();
        let grounded = ground_wfomc(&f, &voc, n, &w);
        assert_eq!(lifted, grounded);
        // (2⁴ from Extra) · (2² − 1) = 48.
        assert_eq!(lifted, weight_int(48));
    }

    #[test]
    fn rejects_fo3_sentences() {
        let f = catalog::transitivity();
        assert!(matches!(
            wfomc_fo2(&f, &f.vocabulary(), 3, &Weights::ones()),
            Err(LiftError::TooManyVariables { .. })
        ));
    }

    #[test]
    fn stats_reflect_the_work_done() {
        let f = catalog::forall_exists_edge();
        let (_, stats) = wfomc_fo2_with_stats(&f, &f.vocabulary(), 5, &Weights::ones()).unwrap();
        assert_eq!(stats.introduced_predicates, 1);
        assert_eq!(stats.shannon_branches, 1);
        assert!(stats.total_valid_cells >= 3);
        assert!(stats.compositions_summed > 0);
    }

    #[test]
    fn stats_display_surfaces_the_cell_accounting() {
        let f = catalog::forall_exists_edge();
        let (_, stats) = wfomc_fo2_with_stats(&f, &f.vocabulary(), 5, &Weights::ones()).unwrap();
        let text = stats.to_string();
        assert!(text.contains("cells ("), "{text}");
        assert!(text.contains("zero cells dropped"), "{text}");
        assert!(text.contains("summed"), "{text}");
        assert!(text.contains("Shannon branch(es)"), "{text}");
        assert!(text.contains("introduced predicate(s)"), "{text}");
    }

    #[test]
    fn polynomial_scaling_smoke_test() {
        // The lifted algorithm should comfortably reach n = 30 on the
        // intro example, far beyond anything enumeration could do.
        let f = catalog::forall_exists_edge();
        let voc = f.vocabulary();
        let n = 30;
        let lifted = wfomc_fo2(&f, &voc, n, &Weights::ones()).unwrap();
        let expected = weight_pow(&(weight_pow(&weight_int(2), n) - weight_int(1)), n);
        assert_eq!(lifted, expected);
    }
}
