//! A probabilistic knowledge base with soft constraints, in the style of the
//! paper's introduction (Example 1.1): an automatically extracted KB stores
//! `Spouse`, `Female` and `Male` facts with uncertainty, and a soft constraint
//! says a female's spouse is typically male.
//!
//! Because the symmetric WFOMC problem only depends on the domain *size* and
//! the constraint weights, a synthetic domain exercises exactly the inference
//! path a real knowledge base would.
//!
//! Run with `cargo run --release --example knowledge_base_queries`.

use wfomc::prelude::*;

fn main() {
    // The knowledge base's soft constraint set.
    let mut kb = MarkovLogicNetwork::new();
    // Example 1.1: (3, Spouse(x,y) ∧ Female(x) ⇒ Male(y)).
    kb.add_soft(
        weight_int(3),
        implies(
            and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
            atom("Male", &["y"]),
        ),
    );
    // Extraction confidences modeled symmetrically: facts are somewhat rare.
    kb.add_soft(weight_ratio(1, 4), atom("Spouse", &["x", "y"]));
    // weight 1 = uninformative
    kb.add_soft(weight_int(1), atom("Female", &["x"]));
    // Hard ontology constraints: nobody is married to themselves, and nobody
    // is both male and female.
    kb.add_hard(not(atom("Spouse", &["x", "x"])));
    kb.add_hard(not(and(vec![atom("Female", &["x"]), atom("Male", &["x"])])));

    let engine = MlnEngine::new(&kb).expect("reduction applies");

    println!("== Knowledge base with soft constraints (Example 1.1 style) ==\n");
    println!("Reduction to symmetric WFOMC (Example 1.2):");
    for (name, pair) in engine.reduction().weights.iter() {
        println!("  relation {name:<10} weight pair {pair}");
    }
    println!();

    let queries = vec![
        (
            "some female has a spouse",
            exists(
                ["x", "y"],
                and(vec![atom("Female", &["x"]), atom("Spouse", &["x", "y"])]),
            ),
        ),
        (
            "every spouse of a female is male",
            forall(
                ["x", "y"],
                implies(
                    and(vec![atom("Spouse", &["x", "y"]), atom("Female", &["x"])]),
                    atom("Male", &["y"]),
                ),
            ),
        ),
        (
            "the marriage relation is non-empty",
            exists(["x", "y"], atom("Spouse", &["x", "y"])),
        ),
    ];

    for (label, query) in queries {
        println!("Pr[{label}] as the domain grows:");
        for n in 1..=5 {
            let (p, method, _) = engine
                .probability_with_methods(&query, n)
                .expect("exact inference");
            println!("  n = {n}: {:<24} (method: {method})", format_rational(&p));
        }
        println!();
    }

    // Conditional query with evidence expressed as extra hard constraints:
    // given that person 0 is female (modelled symmetrically by conditioning on
    // "∃x Female(x)"), how does the marriage probability change?
    let evidence = exists(["x"], atom("Female", &["x"]));
    let joint = Formula::and(
        exists(["x", "y"], atom("Spouse", &["x", "y"])),
        evidence.clone(),
    );
    println!("Conditional query Pr[∃ spouse | ∃ female]:");
    for n in 1..=5 {
        let p_joint = engine.probability(&joint, n).unwrap();
        let p_evidence = engine.probability(&evidence, n).unwrap();
        let conditional = p_joint / p_evidence;
        println!("  n = {n}: {}", format_rational(&conditional));
    }
}

fn format_rational(w: &Weight) -> String {
    let numer: f64 = w.numer().to_string().parse().unwrap_or(f64::NAN);
    let denom: f64 = w.denom().to_string().parse().unwrap_or(f64::NAN);
    format!("{:.6} ({w})", numer / denom)
}
